"""Tests for the SLO subsystem: policy, EDF queue, gate, and serving."""

import hashlib
import json

import pytest

from repro.cluster.stats import StatsCollector
from repro.core.config import (
    ClusterConfig,
    MoDMConfig,
    MonitorMode,
    SLOClass,
    SLOPolicy,
)
from repro.core.baselines import NirvanaSystem, VanillaSystem
from repro.core.monitor import GlobalMonitor, MonitorConfig
from repro.core.request import RequestRecord
from repro.core.serving import MoDMSystem, _ReadyQueue
from repro.core.slo import PathEstimate, SloGate, summarize_slo
from repro.diffusion.registry import get_model
from repro.cluster.arrivals import poisson_arrivals
from repro.workloads import DiffusionDBConfig, diffusiondb_trace


def _record(
    request_id=0,
    arrival=0.0,
    enqueued=0.0,
    priority=0,
    deadline=None,
):
    rec = RequestRecord(
        request_id=request_id, prompt=None, arrival_s=arrival
    )
    rec.enqueued_s = enqueued
    rec.priority = priority
    rec.deadline_s = deadline
    return rec


# ----------------------------------------------------------------------
# SLOPolicy / SLOClass configuration
# ----------------------------------------------------------------------
class TestSLOPolicyConfig:
    def test_deadline_from_multiplier(self):
        cls = SLOClass(name="std", multiplier=2.0)
        assert cls.deadline_budget_s(50.0) == 100.0

    def test_absolute_deadline_wins(self):
        cls = SLOClass(name="std", multiplier=2.0, deadline_s=30.0)
        assert cls.deadline_budget_s(50.0) == 30.0

    def test_needs_multiplier_or_deadline(self):
        with pytest.raises(ValueError):
            SLOClass(name="bad", multiplier=None)
        with pytest.raises(ValueError):
            SLOClass(name="bad", multiplier=-1.0)

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError):
            SLOPolicy(
                classes=(SLOClass(name="a"), SLOClass(name="a"))
            )

    def test_class_assignment_deterministic_and_weighted(self):
        policy = SLOPolicy(
            classes=(
                SLOClass(name="premium", priority=0, share=1.0),
                SLOClass(name="batch", priority=1, share=3.0),
            )
        )
        first = [policy.class_of(i).name for i in range(400)]
        again = [policy.class_of(i).name for i in range(400)]
        assert first == again
        premium_share = first.count("premium") / len(first)
        assert 0.15 < premium_share < 0.35  # ~1/4 by share weights

    def test_single_class_shortcut(self):
        policy = SLOPolicy()
        assert policy.class_of(123).name == "standard"

    def test_class_named_unknown(self):
        with pytest.raises(KeyError):
            SLOPolicy().class_named("nope")


# ----------------------------------------------------------------------
# EDF ready-queue ordering
# ----------------------------------------------------------------------
class TestEdfReadyQueue:
    def test_orders_by_deadline(self):
        q = _ReadyQueue(edf=True)
        late = _record(request_id=1, deadline=300.0)
        soon = _record(request_id=2, deadline=100.0)
        q.push(late, now=0.0)
        q.push(soon, now=0.0)
        assert q.pop(0.0).request_id == 2
        assert q.pop(0.0).request_id == 1

    def test_equal_deadlines_fifo_tiebreak(self):
        q = _ReadyQueue(edf=True)
        for i in range(5):
            q.push(_record(request_id=i, deadline=100.0), now=0.0)
        assert [q.pop(0.0).request_id for _ in range(5)] == list(range(5))

    def test_priority_dominates_deadline(self):
        # Priority inversion: an urgent-deadline low-priority record must
        # not jump a high-priority one.
        q = _ReadyQueue(edf=True)
        q.push(
            _record(request_id=1, priority=1, deadline=10.0), now=0.0
        )
        q.push(
            _record(request_id=2, priority=0, deadline=500.0), now=0.0
        )
        assert q.pop(0.0).request_id == 2
        assert q.pop(0.0).request_id == 1

    def test_zero_slack_still_served_in_order(self):
        q = _ReadyQueue(edf=True)
        q.push(_record(request_id=1, deadline=50.0), now=50.0)
        q.push(_record(request_id=2, deadline=60.0), now=50.0)
        assert q.pop(50.0).request_id == 1

    def test_no_deadline_sorts_last_in_band(self):
        q = _ReadyQueue(edf=True)
        q.push(_record(request_id=1, deadline=None), now=0.0)
        q.push(_record(request_id=2, deadline=1e9), now=0.0)
        assert q.pop(0.0).request_id == 2
        assert q.pop(0.0).request_id == 1

    def test_pending_promotion_rekeys_by_deadline(self):
        q = _ReadyQueue(edf=True)
        # Not ready yet: pending is keyed by enqueued_s, but once both
        # promote, pops must come out in deadline order.
        q.push(_record(request_id=1, enqueued=5.0, deadline=900.0), 0.0)
        q.push(_record(request_id=2, enqueued=6.0, deadline=100.0), 0.0)
        assert q.pop(4.0) is None
        assert q.pop(6.0).request_id == 2

    def test_iteration_matches_pop_order(self):
        q = _ReadyQueue(edf=True)
        q.push(_record(request_id=1, deadline=300.0), now=0.0)
        q.push(_record(request_id=2, deadline=100.0), now=0.0)
        q.push(_record(request_id=3, enqueued=50.0, deadline=10.0), 0.0)
        assert [r.request_id for r in q] == [2, 1, 3]
        assert len(q) == 3

    def test_fifo_mode_unchanged(self):
        q = _ReadyQueue()
        q.push(_record(request_id=1, deadline=900.0), now=0.0)
        q.push(_record(request_id=2, deadline=1.0), now=0.0)
        assert q.pop(0.0).request_id == 1  # insertion order, not EDF


# ----------------------------------------------------------------------
# Gate state machine: accept / degrade / shed / late boundaries
# ----------------------------------------------------------------------
class TestSloGate:
    def _gate(self, policy=None, stats=None):
        return SloGate(policy or SLOPolicy(), 50.0, stats)

    def _stamped(self, gate, arrival=0.0):
        rec = _record(request_id=7, arrival=arrival, enqueued=arrival)
        gate.assign(rec)
        return rec

    def test_assign_stamps_class_and_deadline(self):
        gate = self._gate()
        rec = self._stamped(gate, arrival=10.0)
        assert rec.slo_class == "standard"
        assert rec.deadline_s == 10.0 + 2.0 * 50.0
        assert rec.slack_s(10.0) == 100.0

    def test_accept_when_primary_feasible(self):
        gate = self._gate()
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec, 0.0, PathEstimate("large", wait_s=40.0, service_s=60.0)
        )
        assert verdict.action == "accept"
        assert not rec.shed

    def test_exact_deadline_boundary_is_feasible(self):
        gate = self._gate()
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec, 0.0, PathEstimate("large", wait_s=50.0, service_s=50.0)
        )
        assert verdict.action == "accept"

    def test_degrade_when_only_fallback_feasible(self):
        gate = self._gate()
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec,
            0.0,
            PathEstimate("large", wait_s=90.0, service_s=50.0),
            (
                PathEstimate(
                    "small", wait_s=10.0, service_s=20.0, degraded=True
                ),
            ),
        )
        assert verdict.action == "degrade"
        assert verdict.path.name == "small"

    def test_shed_when_nothing_feasible(self):
        gate = self._gate()
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec,
            0.0,
            PathEstimate("large", wait_s=90.0, service_s=50.0),
            (PathEstimate("small", wait_s=90.0, service_s=30.0, degraded=True),),
        )
        assert verdict.action == "shed"
        assert rec.shed
        assert rec.rejection.slo_class == "standard"
        assert rec.rejection.best_estimate_s == 120.0
        assert rec.rejection.best_estimate_s > rec.deadline_s

    def test_shed_best_estimate_ignores_forbidden_fallbacks(self):
        # With degrade off, a feasible fallback the request cannot take
        # must not make the shed look avoidable.
        gate = self._gate(SLOPolicy(degrade=False))
        rec = self._stamped(gate)
        gate.admit(
            rec,
            0.0,
            PathEstimate("large", wait_s=90.0, service_s=50.0),
            (PathEstimate("small", wait_s=0.0, service_s=10.0, degraded=True),),
        )
        assert rec.rejection.best_estimate_s == 140.0  # primary, not 10
        assert rec.rejection.best_estimate_s > rec.deadline_s

    def test_slack_margin_tightens_feasibility(self):
        gate = SloGate(SLOPolicy(slack_margin_s=5.0), 50.0)
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec, 0.0, PathEstimate("large", wait_s=50.0, service_s=50.0)
        )
        assert verdict.action == "shed"

    def test_degrade_disabled_skips_fallbacks(self):
        gate = self._gate(SLOPolicy(degrade=False))
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec,
            0.0,
            PathEstimate("large", wait_s=200.0, service_s=50.0),
            (PathEstimate("small", wait_s=0.0, service_s=10.0, degraded=True),),
        )
        assert verdict.action == "shed"

    def test_non_degradable_class_skips_fallbacks(self):
        policy = SLOPolicy(
            classes=(SLOClass(name="strict", degradable=False),)
        )
        gate = self._gate(policy)
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec,
            0.0,
            PathEstimate("large", wait_s=200.0, service_s=50.0),
            (PathEstimate("small", wait_s=0.0, service_s=10.0, degraded=True),),
        )
        assert verdict.action == "shed"

    def test_non_sheddable_class_rides_late(self):
        policy = SLOPolicy(
            classes=(SLOClass(name="vip", sheddable=False),)
        )
        gate = self._gate(policy)
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec, 0.0, PathEstimate("large", wait_s=500.0, service_s=50.0)
        )
        assert verdict.action == "late"
        assert verdict.admitted
        assert not rec.shed

    def test_admission_disabled_rides_late(self):
        gate = self._gate(SLOPolicy(admission=False, degrade=False))
        rec = self._stamped(gate)
        verdict = gate.admit(
            rec, 0.0, PathEstimate("large", wait_s=500.0, service_s=50.0)
        )
        assert verdict.action == "late"

    def test_events_streamed_to_stats(self):
        stats = StatsCollector()
        gate = self._gate(stats=stats)
        rec = self._stamped(gate)
        gate.admit(
            rec, 0.0, PathEstimate("large", wait_s=0.0, service_s=50.0)
        )
        gate.record_completion(rec, 60.0)
        window = stats.slo_window(60.0, 300.0)
        assert window.accepted == 1
        assert window.met == 1
        assert window.pressure == 0.0


# ----------------------------------------------------------------------
# Stats: SLO window and pressure
# ----------------------------------------------------------------------
class TestSloWindowStats:
    def test_counts_and_pressure(self):
        stats = StatsCollector()
        for t, kind in (
            (1.0, "accept"),
            (2.0, "accept"),
            (3.0, "shed"),
            (4.0, "degrade"),
            (5.0, "violation"),
            (6.0, "met"),
        ):
            stats.record_slo(t, kind, 10.0)
        window = stats.slo_window(6.0, 10.0)
        assert (window.accepted, window.shed, window.degraded) == (2, 1, 1)
        assert (window.met, window.violated) == (1, 1)
        # bad = shed + violation + 0.5*degrade = 2.5 of 6 events
        assert window.pressure == pytest.approx(2.5 / 6)

    def test_old_events_age_out(self):
        stats = StatsCollector()
        stats.record_slo(0.0, "shed", -5.0)
        stats.record_slo(100.0, "accept", 5.0)
        window = stats.slo_window(100.0, 50.0)
        assert window.shed == 0
        assert window.accepted == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StatsCollector().record_slo(0.0, "bogus", 0.0)

    def test_mean_slack_admissions_only(self):
        stats = StatsCollector()
        stats.record_slo(1.0, "accept", 10.0)
        stats.record_slo(2.0, "shed", -30.0)
        stats.record_slo(3.0, "met", 99.0)  # outcome: not in mean
        window = stats.slo_window(3.0, 10.0)
        assert window.mean_slack_s == pytest.approx(-10.0)


# ----------------------------------------------------------------------
# Monitor: SLO pressure shifts allocation toward the small model
# ----------------------------------------------------------------------
class TestMonitorPressure:
    def _monitor(self):
        return GlobalMonitor(
            MonitorConfig(
                mode=MonitorMode.THROUGHPUT, use_pid=False
            ),
            large_model=get_model("sd3.5-large"),
            small_models=[get_model("sdxl")],
            gpu_name="MI210",
            n_workers=16,
        )

    def _window(self):
        stats = StatsCollector()
        for i in range(100):
            stats.record_decision(float(i), hit=(i % 2 == 0), k=10)
        return stats.window(100.0, 300.0)

    def test_pressure_reduces_large_allocation(self):
        window = self._window()
        calm = self._monitor().allocate(window)
        pressed = self._monitor().allocate(window, slo_pressure=0.9)
        assert pressed.n_large < calm.n_large
        assert pressed.n_small > calm.n_small

    def test_zero_pressure_identical(self):
        window = self._window()
        assert self._monitor().allocate(window) == self._monitor().allocate(
            window, slo_pressure=0.0
        )

    def test_invalid_pressure_rejected(self):
        with pytest.raises(ValueError):
            self._monitor().allocate(self._window(), slo_pressure=1.5)


# ----------------------------------------------------------------------
# Serving integration: shed/degrade accounting + disabled bit-identity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def slo_trace(space):
    trace = diffusiondb_trace(
        space, DiffusionDBConfig(n_requests=260, seed="slo-serving")
    )
    base = trace.slice(60, 260).rebase()
    arrivals = poisson_arrivals(20.0, len(base), seed="slo-serving-rate")
    return trace, base.with_arrivals(arrivals)


class TestServingWithSlo:
    def _modm(self, space, policy):
        return MoDMSystem(
            space,
            MoDMConfig(
                cluster=ClusterConfig(gpu_name="A40", n_workers=2),
                cache_capacity=300,
                small_models=("sdxl",),
                slo=policy,
            ),
        )

    def test_overloaded_vanilla_sheds_and_terminates(
        self, space, slo_trace
    ):
        _, timed = slo_trace
        system = VanillaSystem(
            space,
            ClusterConfig(gpu_name="A40", n_workers=2),
            slo=SLOPolicy(),
        )
        report = system.run(timed)
        summary = report.slo()
        assert report.n_shed > 0
        assert summary.shed == report.n_shed
        assert summary.total == len(timed)
        # Terminal states cover the whole trace: nothing left hanging.
        assert summary.shed + summary.completed_in_time + \
            summary.completed_late + summary.unfinished == summary.total
        assert summary.unfinished == 0
        # Shed records are excluded from latency metrics.
        assert report.latencies().size == report.n_completed

    def test_nirvana_sheds_under_overload(self, space, slo_trace):
        _, timed = slo_trace
        system = NirvanaSystem(
            space,
            ClusterConfig(gpu_name="A40", n_workers=2),
            cache_capacity=300,
            slo=SLOPolicy(),
        )
        report = system.run(timed)
        assert report.slo().shed > 0

    def test_modm_degrades_instead_of_shedding(self, space, slo_trace):
        trace, timed = slo_trace
        system = self._modm(space, SLOPolicy())
        system.warm_cache([r.prompt for r in trace.requests[:60]])
        report = system.run(timed)
        summary = report.slo()
        vanilla = VanillaSystem(
            space,
            ClusterConfig(gpu_name="A40", n_workers=2),
            slo=SLOPolicy(),
        ).run(timed)
        assert summary.shed < vanilla.slo().shed
        assert summary.violation_rate < vanilla.slo().violation_rate
        assert report.n_degraded == summary.degraded
        # Degraded requests completed on the hit path: the small model,
        # or an idle large worker draining the hit queue — in which case
        # the record must carry a refine anchor (a candidate-less
        # degraded miss served by a large worker is full primary service
        # and loses the flag).
        degraded = [
            r for r in report.records if r.degraded and not r.shed
        ]
        assert degraded
        for r in degraded:
            if not r.completed:
                continue
            assert r.model_name in ("sdxl", "sd3.5-large")
            if r.model_name == "sd3.5-large":
                assert r.degrade_source is not None

    def test_non_sheddable_class_never_sheds(self, space, slo_trace):
        _, timed = slo_trace
        policy = SLOPolicy(
            classes=(SLOClass(name="vip", sheddable=False),),
            degrade=False,
        )
        system = VanillaSystem(
            space,
            ClusterConfig(gpu_name="A40", n_workers=2),
            slo=policy,
        )
        report = system.run(timed)
        assert report.n_shed == 0
        assert report.n_completed == len(timed)

    def test_summarize_none_without_deadlines(self, space, slo_trace):
        _, timed = slo_trace
        report = VanillaSystem(
            space, ClusterConfig(gpu_name="A40", n_workers=2)
        ).run(timed)
        assert report.slo() is None
        assert summarize_slo(report.records) is None


class TestDisabledBitIdentity:
    """With the SLO subsystem off, decisions are bit-for-bit unchanged.

    The seed golden regression (tests/integration) pins ``slo=None``
    against the pre-SLO engine; this adds the observe-only equivalence —
    a policy with every behaviour knob off must not perturb the engine
    either (it only annotates and accounts).
    """

    OBSERVE_ONLY = SLOPolicy(
        edf=False,
        admission=False,
        degrade=False,
        monitor_pressure=False,
    )

    def _run(self, space, trace, timed, policy):
        system = MoDMSystem(
            space,
            MoDMConfig(
                cluster=ClusterConfig(gpu_name="A40", n_workers=2),
                cache_capacity=300,
                small_models=("sdxl",),
                slo=policy,
            ),
        )
        system.warm_cache([r.prompt for r in trace.requests[:60]])
        return system.run(timed)

    @staticmethod
    def _fingerprint(report):
        payload = [
            (
                r.request_id,
                r.decision.hit,
                r.decision.k_steps,
                round(r.decision.similarity, 12),
                round(r.completion_s, 9) if r.completed else None,
                r.worker_id,
                r.model_name,
            )
            for r in report.records
        ]
        return hashlib.sha256(json.dumps(payload).encode()).hexdigest()

    def test_observe_only_policy_is_bit_identical(
        self, space, slo_trace
    ):
        trace, timed = slo_trace
        baseline = self._run(space, trace, timed, None)
        observed = self._run(space, trace, timed, self.OBSERVE_ONLY)
        assert self._fingerprint(baseline) == self._fingerprint(observed)
        # ...while still annotating deadlines and accounting.
        assert baseline.slo() is None
        summary = observed.slo()
        assert summary is not None
        assert summary.shed == 0
        assert summary.total == len(timed)
