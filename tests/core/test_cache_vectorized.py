"""Vectorized retrieval equivalence, eviction-policy registry, sharding.

The retrieval core replaced a full ``np.argsort`` scan with a masked
vectorized ``argmax``; these tests pin the new path to a reference
implementation of the old one on randomized caches (including dead slots
and adversarial all-negative similarities), and pin the eviction order of
every policy in the registry.
"""

import numpy as np
import pytest

from repro._rng import rng_for, unit_vector
from repro.core.cache import (
    EVICTION_POLICIES,
    EvictionPolicy,
    ShardedVectorCache,
    VectorCache,
    make_eviction_policy,
    make_image_cache,
    register_eviction_policy,
)

DIM = 16


def _vec(key):
    return unit_vector(rng_for("vec-cache-test", key), DIM)


def _reference_argsort_retrieve(cache, query):
    """The pre-vectorization retrieval: full descending argsort, then the
    first live slot — the behaviour the masked argmax must reproduce."""
    if len(cache) == 0:
        return None, 0.0
    qnorm = float(np.linalg.norm(query))
    if qnorm == 0.0:
        return None, 0.0
    sims = cache._matrix @ (query / qnorm)
    for slot in np.argsort(sims)[::-1]:
        entry = cache._entries[int(slot)]
        if entry is not None:
            return entry, float(sims[int(slot)])
    return None, 0.0


def _randomized_cache(seed, capacity, n_inserts, policy="fifo"):
    """A churned cache: inserts beyond capacity plus random recorded hits,
    so slots have been evicted, reused, and (when underfull) left dead."""
    rng = rng_for("randomized-cache", seed)
    cache = VectorCache(capacity=capacity, embed_dim=DIM, policy=policy)
    for i in range(n_inserts):
        cache.insert(f"p{i}", _vec((seed, i)), now=float(i))
        if i % 3 == 0 and len(cache):
            entry, _ = cache.retrieve(_vec((seed, "hitq", i)))
            if entry is not None and rng.random() < 0.5:
                cache.record_hit(entry, now=float(i))
    return cache


class TestArgmaxMatchesArgsort:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "capacity,n_inserts",
        [(8, 3), (8, 8), (8, 25), (32, 50)],
    )
    def test_randomized_equivalence(self, seed, capacity, n_inserts):
        for policy in sorted(EVICTION_POLICIES):
            cache = _randomized_cache(
                (seed, policy), capacity, n_inserts, policy=policy
            )
            for q in range(10):
                query = _vec((seed, "query", q))
                ref_entry, ref_sim = _reference_argsort_retrieve(
                    cache, query
                )
                entry, sim = cache.retrieve(query)
                assert entry is ref_entry
                assert sim == ref_sim  # same float path, bit-identical

    def test_all_negative_similarities_skip_dead_slots(self):
        # Dead slots are zero rows (sim exactly 0.0); a naive unmasked
        # argmax would prefer them over a live entry with sim < 0.
        cache = VectorCache(capacity=4, embed_dim=DIM)
        vec = _vec("only")
        cache.insert("only", vec, now=0.0)
        entry, sim = cache.retrieve(-vec)
        assert entry is not None and entry.payload == "only"
        assert sim < 0.0
        ref_entry, ref_sim = _reference_argsort_retrieve(cache, -vec)
        assert entry is ref_entry and sim == ref_sim

    def test_zero_query_and_empty_cache(self):
        cache = VectorCache(capacity=4, embed_dim=DIM)
        assert cache.retrieve(np.zeros(DIM)) == (None, 0.0)
        assert cache.retrieve(_vec("q")) == (None, 0.0)
        cache.insert("x", _vec("x"), now=0.0)
        assert cache.retrieve(np.zeros(DIM)) == (None, 0.0)


class TestRetrieveTopK:
    def test_topk_sorted_and_complete(self):
        cache = _randomized_cache("topk", capacity=16, n_inserts=30)
        query = _vec("topk-query")
        top = cache.retrieve_topk(query, k=5)
        assert len(top) == 5
        sims = [s for _, s in top]
        assert sims == sorted(sims, reverse=True)
        best_entry, best_sim = cache.retrieve(query)
        assert top[0][0] is best_entry
        assert top[0][1] == best_sim

    def test_topk_exhaustive_against_bruteforce(self):
        cache = _randomized_cache("topk-bf", capacity=12, n_inserts=20)
        query = _vec("bf-query")
        qn = query / np.linalg.norm(query)
        brute = sorted(
            (
                (float(e.embedding @ qn), e.entry_id)
                for e in cache.entries()
            ),
            reverse=True,
        )
        top = cache.retrieve_topk(query, k=4)
        assert [
            (round(s, 12), e.entry_id) for e, s in top
        ] == [(round(s, 12), i) for s, i in brute[:4]]

    def test_k_larger_than_occupancy(self):
        cache = VectorCache(capacity=8, embed_dim=DIM)
        cache.insert("a", _vec("a"), now=0.0)
        cache.insert("b", _vec("b"), now=1.0)
        top = cache.retrieve_topk(_vec("q"), k=10)
        assert len(top) == 2

    def test_invalid_k(self):
        cache = VectorCache(capacity=4, embed_dim=DIM)
        with pytest.raises(ValueError):
            cache.retrieve_topk(_vec("q"), k=0)

    def test_empty_cache_returns_nothing(self):
        cache = VectorCache(capacity=4, embed_dim=DIM)
        assert cache.retrieve_topk(_vec("q"), k=3) == []


class TestRetrieveBatch:
    def test_singleton_batch_bitwise_matches_retrieve(self):
        cache = _randomized_cache("batch1", capacity=16, n_inserts=24)
        query = _vec("batch1-query")
        [(entry_b, sim_b)] = cache.retrieve_batch(query[None, :])
        entry, sim = cache.retrieve(query)
        assert entry_b is entry
        assert sim_b == sim

    def test_batch_matches_sequential(self):
        cache = _randomized_cache("batchn", capacity=16, n_inserts=24)
        queries = np.stack([_vec(("bq", i)) for i in range(7)])
        batched = cache.retrieve_batch(queries)
        for i, (entry, sim) in enumerate(batched):
            ref_entry, ref_sim = cache.retrieve(queries[i])
            assert entry is ref_entry
            assert np.isclose(sim, ref_sim, rtol=0, atol=1e-12)

    def test_zero_rows_and_empty_cache(self):
        cache = VectorCache(capacity=4, embed_dim=DIM)
        queries = np.stack([np.zeros(DIM), _vec("q")])
        assert cache.retrieve_batch(queries) == [(None, 0.0), (None, 0.0)]
        cache.insert("x", _vec("x"), now=0.0)
        out = cache.retrieve_batch(queries)
        assert out[0] == (None, 0.0)
        assert out[1][0] is not None

    def test_bad_shape_rejected(self):
        cache = VectorCache(capacity=4, embed_dim=DIM)
        with pytest.raises(ValueError):
            cache.retrieve_batch(np.zeros((2, DIM + 1)))
        with pytest.raises(ValueError):
            cache.retrieve_batch(np.zeros(DIM))


class TestEvictionPolicyRegistry:
    def test_registry_contents(self):
        assert {"fifo", "lru", "utility"} <= set(EVICTION_POLICIES)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_eviction_policy("nope")

    def test_custom_policy_registration(self):
        @register_eviction_policy("_test_newest")
        class NewestEviction(EvictionPolicy):
            """Evicts the newest entry (for the registration test)."""

            def victim(self, entries):
                return max(
                    (e.entry_id, s)
                    for s, e in enumerate(entries)
                    if e is not None
                )[1]

        try:
            cache = VectorCache(
                capacity=2, embed_dim=DIM, policy="_test_newest"
            )
            cache.insert("old", _vec("old"), now=0.0)
            cache.insert("new", _vec("new"), now=1.0)
            evicted = cache.insert("newer", _vec("newer"), now=2.0)
            assert evicted.payload == "new"
        finally:
            del EVICTION_POLICIES["_test_newest"]


def _eviction_order(cache, n_total, hit_schedule=()):
    """Insert ``n_total`` payloads, applying ``hit_schedule`` as a mapping
    of insert-step -> payload to hit just before that insert; returns the
    payloads in eviction order."""
    evicted = []
    by_payload = {}
    for i in range(n_total):
        for step, payload in hit_schedule:
            if step == i:
                entry = by_payload[payload]
                cache.record_hit(entry, now=float(i))
        out = cache.insert(f"p{i}", _vec(("evo", i)), now=float(i))
        by_payload[f"p{i}"] = cache.last_inserted
        if out is not None:
            evicted.append(out.payload)
    return evicted


class TestEvictionOrder:
    def test_fifo_strict_insertion_order(self):
        cache = VectorCache(capacity=3, embed_dim=DIM, policy="fifo")
        assert _eviction_order(cache, 7) == ["p0", "p1", "p2", "p3"]

    def test_fifo_ignores_hits(self):
        cache = VectorCache(capacity=3, embed_dim=DIM, policy="fifo")
        # p0 is hit repeatedly but FIFO still evicts it first (§5.4).
        evicted = _eviction_order(
            cache, 5, hit_schedule=[(1, "p0"), (2, "p0")]
        )
        assert evicted == ["p0", "p1"]

    def test_lru_hit_refreshes_recency(self):
        cache = VectorCache(capacity=3, embed_dim=DIM, policy="lru")
        # Hit p0 just before inserting p3: p1 is now least recently used.
        evicted = _eviction_order(cache, 5, hit_schedule=[(3, "p0")])
        assert evicted == ["p1", "p2"]

    def test_lru_without_hits_degenerates_to_fifo(self):
        cache = VectorCache(capacity=3, embed_dim=DIM, policy="lru")
        assert _eviction_order(cache, 6) == ["p0", "p1", "p2"]

    def test_utility_evicts_fewest_hits_oldest_first(self):
        cache = VectorCache(capacity=3, embed_dim=DIM, policy="utility")
        entries = {}
        for i in range(3):
            cache.insert(f"p{i}", _vec(("ut", i)), now=float(i))
            entries[f"p{i}"] = cache.last_inserted
        cache.record_hit(entries["p0"], now=3.0)
        cache.record_hit(entries["p2"], now=4.0)
        # p1 has the fewest hits and goes first.
        assert cache.insert("p3", _vec(("ut", 3)), now=5.0).payload == "p1"
        cache.record_hit(cache.last_inserted, now=6.0)
        # Now p0, p2, p3 all have one hit: ties evict oldest (p0).
        assert cache.insert("p4", _vec(("ut", 4)), now=7.0).payload == "p0"

    def test_utility_heap_stays_bounded_under_hit_floods(self):
        # Hit-heavy runs with rare evictions must not grow the lazy
        # tombstone heap without bound: compaction keeps it O(live).
        cache = VectorCache(capacity=4, embed_dim=DIM, policy="utility")
        for i in range(4):
            cache.insert(f"p{i}", _vec(("hb", i)), now=float(i))
        hot = cache.last_inserted
        for i in range(10_000):
            cache.record_hit(hot, now=float(i))
        assert len(cache._policy._heap) <= 2 * 4 + 17
        # Eviction semantics survive compaction: fewest hits, oldest.
        assert cache.insert("new", _vec("hbn"), now=1e6).payload == "p0"

    def test_utility_heap_tracks_hit_updates(self):
        cache = VectorCache(capacity=2, embed_dim=DIM, policy="utility")
        cache.insert("a", _vec("ua"), now=0.0)
        a_entry = cache.last_inserted
        cache.insert("b", _vec("ub"), now=1.0)
        cache.record_hit(a_entry, now=2.0)
        cache.record_hit(a_entry, now=3.0)
        assert cache.insert("c", _vec("uc"), now=4.0).payload == "b"
        # "c" (0 hits) now loses to "a" (2 hits).
        assert cache.insert("d", _vec("ud"), now=5.0).payload == "c"


class TestShardedVectorCache:
    def test_capacity_partitioned(self):
        cache = ShardedVectorCache(
            capacity=10, embed_dim=DIM, n_shards=4
        )
        assert cache.capacity == 10
        assert cache.n_shards == 4
        sizes = [s["capacity"] for s in cache.shard_stats()]
        assert sorted(sizes) == [2, 2, 3, 3]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ShardedVectorCache(capacity=2, embed_dim=DIM, n_shards=0)
        with pytest.raises(ValueError):
            ShardedVectorCache(capacity=2, embed_dim=DIM, n_shards=3)

    def test_insert_round_robins_and_len_tracks(self):
        cache = ShardedVectorCache(capacity=8, embed_dim=DIM, n_shards=2)
        for i in range(6):
            cache.insert(f"p{i}", _vec(("sh", i)), now=float(i))
        assert len(cache) == 6
        per_shard = [s["size"] for s in cache.shard_stats()]
        assert per_shard == [3, 3]

    def test_retrieve_finds_best_across_shards(self):
        cache = ShardedVectorCache(capacity=8, embed_dim=DIM, n_shards=4)
        vecs = {f"p{i}": _vec(("best", i)) for i in range(8)}
        for name, vec in vecs.items():
            cache.insert(name, vec, now=0.0)
        for name, vec in vecs.items():
            entry, sim = cache.retrieve(vec)
            assert entry.payload == name
            assert np.isclose(sim, 1.0)

    def test_matches_unsharded_on_same_contents(self):
        flat = VectorCache(capacity=12, embed_dim=DIM)
        sharded = ShardedVectorCache(
            capacity=12, embed_dim=DIM, n_shards=3
        )
        for i in range(12):
            vec = _vec(("par", i))
            flat.insert(f"p{i}", vec, now=float(i))
            sharded.insert(f"p{i}", vec, now=float(i))
        for q in range(8):
            query = _vec(("parq", q))
            fe, fs = flat.retrieve(query)
            se, ss = sharded.retrieve(query)
            assert fe.payload == se.payload
            assert np.isclose(fs, ss)
            f_top = [e.payload for e, _ in flat.retrieve_topk(query, 4)]
            s_top = [e.payload for e, _ in sharded.retrieve_topk(query, 4)]
            assert f_top == s_top

    def test_entries_global_oldest_first(self):
        cache = ShardedVectorCache(capacity=9, embed_dim=DIM, n_shards=3)
        for i in range(7):
            cache.insert(f"p{i}", _vec(("ord", i)), now=float(i))
        assert [e.payload for e in cache.entries()] == [
            f"p{i}" for i in range(7)
        ]

    def test_record_hit_routed_to_owning_shard(self):
        cache = ShardedVectorCache(
            capacity=4, embed_dim=DIM, n_shards=2, policy="utility"
        )
        vec = _vec("hot-sharded")
        cache.insert("hot", vec, now=0.0)
        entry, _ = cache.retrieve(vec)
        cache.record_hit(entry, now=1.0)
        assert entry.hits == 1
        assert entry.last_hit_at == 1.0

    def test_batch_and_stats(self):
        cache = ShardedVectorCache(capacity=6, embed_dim=DIM, n_shards=2)
        for i in range(6):
            cache.insert(f"p{i}", _vec(("bs", i)), now=float(i))
        queries = np.stack([_vec(("bsq", i)) for i in range(3)])
        batched = cache.retrieve_batch(queries)
        for i, (entry, sim) in enumerate(batched):
            ref_entry, ref_sim = cache.retrieve(queries[i])
            assert entry is ref_entry
            assert np.isclose(sim, ref_sim)
        assert cache.insertions == 6
        # Logical queries, matching the unsharded counter: 3 batch rows
        # plus the 3 reference retrieves — not one per shard scan.
        assert cache.lookups == 6

    def test_eviction_and_latency_model(self):
        cache = ShardedVectorCache(capacity=4, embed_dim=DIM, n_shards=2)
        for i in range(10):
            cache.insert(f"p{i}", _vec(("ev", i)), now=float(i))
        assert len(cache) == 4
        assert cache.evictions == 6
        # Shards scan in parallel: modelled latency is the largest
        # shard's, strictly below an unsharded scan of the same size.
        flat = VectorCache(capacity=4, embed_dim=DIM)
        for i in range(4):
            flat.insert(f"p{i}", _vec(("ev2", i)), now=float(i))
        assert cache.retrieval_latency_s() < flat.retrieval_latency_s()

    def test_make_image_cache_factory(self, sample_images):
        flat = make_image_cache(capacity=4, embed_dim=DIM)
        sharded = make_image_cache(
            capacity=4, embed_dim=DIM, n_shards=2
        )
        assert not isinstance(flat, ShardedVectorCache)
        assert isinstance(sharded, ShardedVectorCache)
        sharded.insert(sample_images[0], _vec("img"), now=0.0)
        assert sharded.storage_bytes() == sample_images[0].size_bytes
