"""Tests for the baseline serving systems."""

import pytest

from repro.core.baselines import (
    NirvanaSystem,
    PineconeSystem,
    VanillaSystem,
)
from repro.core.config import ClusterConfig


@pytest.fixture
def cluster():
    return ClusterConfig(gpu_name="MI210", n_workers=4)


@pytest.fixture
def small_trace(ddb_trace):
    return ddb_trace.slice(100, 200).rebase()


@pytest.fixture
def warm_prompts(ddb_trace):
    return [r.prompt for r in ddb_trace.requests[:100]]


class TestVanilla:
    def test_completes_all(self, space, cluster, small_trace):
        report = VanillaSystem(space, cluster).run(small_trace)
        assert report.n_completed == len(small_trace)

    def test_every_request_full_generation(
        self, space, cluster, small_trace
    ):
        report = VanillaSystem(space, cluster).run(small_trace)
        for record in report.completed():
            assert record.steps_run == 50
            assert record.model_name == "sd3.5-large"
            assert not record.is_hit

    def test_hit_rate_zero(self, space, cluster, small_trace):
        report = VanillaSystem(space, cluster).run(small_trace)
        assert report.hit_rate == 0.0

    def test_configurable_model(self, space, cluster, small_trace):
        report = VanillaSystem(space, cluster, model="sana-1.6b").run(
            small_trace
        )
        assert all(
            r.model_name == "sana-1.6b" for r in report.completed()
        )
        assert report.system == "vanilla-sana-1.6b"

    def test_small_model_faster(self, space, cluster, small_trace):
        flat = small_trace.ignore_timestamps()
        big = VanillaSystem(space, cluster).run(flat)
        small = VanillaSystem(space, cluster, model="sana-1.6b").run(flat)
        assert small.throughput_rpm > 2 * big.throughput_rpm

    def test_turbo_runs_ten_steps(self, space, cluster, small_trace):
        report = VanillaSystem(
            space, cluster, model="sd3.5-large-turbo"
        ).run(small_trace)
        assert all(r.steps_run == 10 for r in report.completed())


class TestNirvana:
    def test_warm_cache_generates_hits(
        self, space, cluster, small_trace, warm_prompts
    ):
        system = NirvanaSystem(space, cluster, cache_capacity=500)
        system.warm_cache(warm_prompts)
        report = system.run(small_trace)
        assert report.hit_rate > 0.3

    def test_hits_skip_steps_on_large_model(
        self, space, cluster, small_trace, warm_prompts
    ):
        system = NirvanaSystem(space, cluster, cache_capacity=500)
        system.warm_cache(warm_prompts)
        report = system.run(small_trace)
        for record in report.completed():
            assert record.model_name == "sd3.5-large"
            if record.is_hit:
                assert record.steps_run < 50

    def test_latent_fetch_slows_hits(
        self, space, cluster, small_trace, warm_prompts
    ):
        flat = small_trace.ignore_timestamps()
        fast = NirvanaSystem(
            space, cluster, cache_capacity=500, latent_fetch_s=0.0
        )
        fast.warm_cache(warm_prompts)
        slow = NirvanaSystem(
            space, cluster, cache_capacity=500, latent_fetch_s=10.0
        )
        slow.warm_cache(warm_prompts)
        assert (
            slow.run(flat).throughput_rpm < fast.run(flat).throughput_rpm
        )

    def test_cache_stores_latent_sizes(
        self, space, cluster, warm_prompts
    ):
        system = NirvanaSystem(space, cluster, cache_capacity=500)
        system.warm_cache(warm_prompts[:10])
        assert system.cache.storage_bytes() == 10 * 2_500_000

    def test_negative_fetch_rejected(self, space, cluster):
        with pytest.raises(ValueError):
            NirvanaSystem(space, cluster, latent_fetch_s=-1.0)

    def test_modest_speedup_over_vanilla(
        self, space, cluster, ddb_trace, warm_prompts
    ):
        """Fig. 7's shape: Nirvana ~1.1-1.4x, well below MoDM."""
        flat = ddb_trace.slice(100, 300).ignore_timestamps()
        vanilla = VanillaSystem(space, cluster).run(flat)
        system = NirvanaSystem(space, cluster, cache_capacity=500)
        system.warm_cache(warm_prompts)
        nirvana = system.run(flat)
        ratio = nirvana.throughput_rpm / vanilla.throughput_rpm
        assert 1.0 < ratio < 1.6


class TestPinecone:
    def test_served_from_cache_instantly(
        self, space, cluster, small_trace, warm_prompts
    ):
        system = PineconeSystem(space, cluster, cache_capacity=500)
        system.warm_cache(warm_prompts)
        report = system.run(small_trace)
        served = [
            r
            for r in report.completed()
            if r.decision.served_from_cache
        ]
        assert served, "expected some retrieval-only serves"
        for record in served:
            assert record.latency_s < 1.0
            assert record.model_name == "cache"
            assert record.steps_run == 0

    def test_misses_fully_generated(
        self, space, cluster, small_trace, warm_prompts
    ):
        system = PineconeSystem(space, cluster, cache_capacity=500)
        system.warm_cache(warm_prompts)
        report = system.run(small_trace)
        for record in report.completed():
            if not record.is_hit:
                assert record.steps_run == 50

    def test_served_image_is_cached_original(
        self, space, cluster, small_trace, warm_prompts
    ):
        system = PineconeSystem(space, cluster, cache_capacity=500)
        system.warm_cache(warm_prompts)
        report = system.run(small_trace)
        for record in report.completed():
            if record.decision.served_from_cache:
                # No refinement: the image was generated for another prompt.
                assert record.image.prompt_id != record.prompt.prompt_id

    def test_threshold_bounds(self, space, cluster):
        with pytest.raises(ValueError):
            PineconeSystem(space, cluster, serve_threshold=1.5)

    def test_higher_threshold_fewer_hits(
        self, space, cluster, small_trace, warm_prompts
    ):
        strict = PineconeSystem(
            space, cluster, cache_capacity=500, serve_threshold=0.97
        )
        strict.warm_cache(warm_prompts)
        loose = PineconeSystem(
            space, cluster, cache_capacity=500, serve_threshold=0.75
        )
        loose.warm_cache(warm_prompts)
        assert (
            strict.run(small_trace).hit_rate
            <= loose.run(small_trace).hit_rate
        )
