"""Tests for the Request Scheduler."""

import numpy as np
import pytest

from repro.cluster.stats import StatsCollector
from repro.core.cache import ImageCache
from repro.core.config import CacheAdmission
from repro.core.kselection import modm_default_selector
from repro.core.retrieval import TextToImageRetrieval
from repro.core.scheduler import RequestScheduler


@pytest.fixture
def scheduler_parts(space):
    retrieval = TextToImageRetrieval(space)
    cache = ImageCache(capacity=200, embed_dim=retrieval.embed_dim)
    stats = StatsCollector()
    scheduler = RequestScheduler(
        cache=cache,
        retrieval=retrieval,
        selector=modm_default_selector(),
        stats=stats,
        admission=CacheAdmission.ALL,
        large_model_name="sd3.5-large",
    )
    return scheduler, cache, stats


class TestDecide:
    def test_empty_cache_is_miss(self, scheduler_parts, prompts):
        scheduler, _, stats = scheduler_parts
        decision = scheduler.decide(prompts[0], now=0.0)
        assert not decision.hit
        assert stats.total_misses == 1

    def test_similar_prompt_hits_after_admit(
        self, scheduler_parts, large_model, ddb_trace
    ):
        scheduler, _, stats = scheduler_parts
        by_session = {}
        for r in ddb_trace:
            by_session.setdefault(r.prompt.session_id, []).append(r.prompt)
        session = next(p for p in by_session.values() if len(p) >= 2)
        image = large_model.generate(session[0], seed="sched").image
        scheduler.admit(session[0], image, now=0.0)
        decision = scheduler.decide(session[1], now=1.0)
        assert decision.hit
        assert decision.k_steps in modm_default_selector().k_set
        assert decision.retrieved_image is image
        assert stats.total_hits == 1

    def test_unrelated_prompt_misses(
        self, scheduler_parts, large_model, prompts
    ):
        scheduler, _, _ = scheduler_parts
        image = large_model.generate(prompts[0], seed="sched").image
        scheduler.admit(prompts[0], image, now=0.0)
        decision = scheduler.decide(prompts[500], now=1.0)
        assert not decision.hit

    def test_scheduler_latency_grows_with_cache(
        self, scheduler_parts, large_model, prompts
    ):
        scheduler, cache, _ = scheduler_parts
        d_empty = scheduler.decide(prompts[0], now=0.0)
        for p in prompts[1:50]:
            scheduler.admit(
                p, large_model.generate(p, seed="sched").image, now=0.0
            )
        d_full = scheduler.decide(prompts[51], now=1.0)
        assert d_full.scheduler_latency_s > d_empty.scheduler_latency_s

    def test_hit_records_cache_entry_hit(
        self, scheduler_parts, large_model, ddb_trace
    ):
        scheduler, cache, _ = scheduler_parts
        by_session = {}
        for r in ddb_trace:
            by_session.setdefault(r.prompt.session_id, []).append(r.prompt)
        session = next(p for p in by_session.values() if len(p) >= 2)
        image = large_model.generate(session[0], seed="sched").image
        scheduler.admit(session[0], image, now=0.0)
        scheduler.decide(session[1], now=1.0)
        assert cache.entries()[0].hits == 1


class TestDecideBatch:
    def _warmed(self, space, large_model, prompts, n=40):
        retrieval = TextToImageRetrieval(space)
        cache = ImageCache(capacity=200, embed_dim=retrieval.embed_dim)
        stats = StatsCollector()
        scheduler = RequestScheduler(
            cache=cache,
            retrieval=retrieval,
            selector=modm_default_selector(),
            stats=stats,
            admission=CacheAdmission.ALL,
            large_model_name="sd3.5-large",
        )
        for p in prompts[:n]:
            scheduler.admit(
                p, large_model.generate(p, seed="batch").image, now=0.0
            )
        return scheduler, stats

    def test_empty_batch(self, scheduler_parts):
        scheduler, _, _ = scheduler_parts
        assert scheduler.decide_batch([], now=0.0) == []

    def test_singleton_batch_matches_decide(
        self, space, large_model, prompts
    ):
        # decide() leaves retrieval state untouched (only stats/hit
        # counters move), so both paths can run on the same scheduler.
        scheduler, _ = self._warmed(space, large_model, prompts)
        d_seq = scheduler.decide(prompts[45], now=1.0)
        [d_bat] = scheduler.decide_batch([prompts[45]], now=1.0)
        assert (d_bat.hit, d_bat.k_steps, d_bat.similarity) == (
            d_seq.hit,
            d_seq.k_steps,
            d_seq.similarity,
        )

    def test_batch_matches_sequential_decisions(
        self, space, large_model, ddb_trace
    ):
        prompts = [r.prompt for r in ddb_trace]
        scheduler, stats = self._warmed(space, large_model, prompts)
        batch = prompts[40:60]
        d_seq = [scheduler.decide(p, now=2.0) for p in batch]
        hits_after_seq = stats.total_hits
        misses_after_seq = stats.total_misses
        d_bat = scheduler.decide_batch(batch, now=2.0)
        assert len(d_bat) == len(d_seq)
        for a, b in zip(d_seq, d_bat):
            assert a.hit == b.hit
            assert a.k_steps == b.k_steps
            assert np.isclose(b.similarity, a.similarity, atol=1e-12)
            assert a.scheduler_latency_s == b.scheduler_latency_s
            if a.hit:
                assert (
                    b.retrieved_image.image_id
                    == a.retrieved_image.image_id
                )
        assert stats.total_hits == 2 * hits_after_seq
        assert stats.total_misses == 2 * misses_after_seq

    def test_batch_records_cache_hits(
        self, space, large_model, ddb_trace
    ):
        prompts = [r.prompt for r in ddb_trace]
        scheduler, stats = self._warmed(space, large_model, prompts)
        decisions = scheduler.decide_batch(prompts[40:60], now=2.0)
        n_hits = sum(d.hit for d in decisions)
        assert stats.total_hits == n_hits
        cache_hits = sum(e.hits for e in scheduler.cache.entries())
        assert cache_hits == n_hits


class TestAdmission:
    def test_admission_none(self, space, large_model, prompts):
        retrieval = TextToImageRetrieval(space)
        cache = ImageCache(capacity=10, embed_dim=retrieval.embed_dim)
        scheduler = RequestScheduler(
            cache=cache,
            retrieval=retrieval,
            selector=modm_default_selector(),
            stats=StatsCollector(),
            admission=CacheAdmission.NONE,
        )
        image = large_model.generate(prompts[0], seed="adm").image
        assert not scheduler.admit(prompts[0], image, now=0.0)
        assert len(cache) == 0

    def test_admission_large_only(
        self, space, large_model, small_model, prompts
    ):
        retrieval = TextToImageRetrieval(space)
        cache = ImageCache(capacity=10, embed_dim=retrieval.embed_dim)
        scheduler = RequestScheduler(
            cache=cache,
            retrieval=retrieval,
            selector=modm_default_selector(),
            stats=StatsCollector(),
            admission=CacheAdmission.LARGE_ONLY,
            large_model_name="sd3.5-large",
        )
        large_img = large_model.generate(prompts[0], seed="adm").image
        small_img = small_model.generate(prompts[1], seed="adm").image
        assert scheduler.admit(prompts[0], large_img, now=0.0)
        assert not scheduler.admit(prompts[1], small_img, now=0.0)
        assert len(cache) == 1

    def test_large_only_requires_model_name(self, space):
        retrieval = TextToImageRetrieval(space)
        with pytest.raises(ValueError):
            RequestScheduler(
                cache=ImageCache(capacity=4, embed_dim=retrieval.embed_dim),
                retrieval=retrieval,
                selector=modm_default_selector(),
                stats=StatsCollector(),
                admission=CacheAdmission.LARGE_ONLY,
            )

    def test_negative_embed_latency_rejected(self, space):
        retrieval = TextToImageRetrieval(space)
        with pytest.raises(ValueError):
            RequestScheduler(
                cache=ImageCache(capacity=4, embed_dim=retrieval.embed_dim),
                retrieval=retrieval,
                selector=modm_default_selector(),
                stats=StatsCollector(),
                embed_latency_s=-0.1,
            )

    def test_bind_stats_redirects_recording(
        self, scheduler_parts, prompts
    ):
        scheduler, _, old_stats = scheduler_parts
        new_stats = StatsCollector()
        scheduler.bind_stats(new_stats)
        scheduler.decide(prompts[0], now=0.0)
        assert new_stats.total_arrivals == 1
        assert old_stats.total_arrivals == 0
