"""Tests for retrieval policies and k-selection."""

import numpy as np
import pytest

from repro.core.kselection import (
    DEFAULT_K_SET,
    MODM_DEFAULT_THRESHOLDS,
    NIRVANA_DEFAULT_THRESHOLDS,
    KSelector,
    derive_thresholds,
    modm_default_selector,
    nirvana_default_selector,
    scale_k_steps,
)
from repro.core.retrieval import TextToImageRetrieval, TextToTextRetrieval
from repro.embedding.space import cosine


class TestRetrievalPolicies:
    def test_t2i_index_uses_image_content(
        self, space, large_model, prompts
    ):
        policy = TextToImageRetrieval(space)
        img_a = large_model.generate(prompts[0], seed="r").image
        img_b = large_model.generate(prompts[50], seed="r").image
        # Same prompt, different images -> different index embeddings.
        emb_a = policy.index_embedding(prompts[0], img_a)
        emb_b = policy.index_embedding(prompts[0], img_b)
        assert not np.allclose(emb_a, emb_b)

    def test_t2t_index_ignores_image(self, space, large_model, prompts):
        policy = TextToTextRetrieval(space)
        img_a = large_model.generate(prompts[0], seed="r").image
        img_b = large_model.generate(prompts[50], seed="r").image
        emb_a = policy.index_embedding(prompts[0], img_a)
        emb_b = policy.index_embedding(prompts[0], img_b)
        assert np.allclose(emb_a, emb_b)

    def test_t2t_scale_matches_nirvana_regime(self, space, ddb_trace):
        """Unrelated ~0, same-session ~0.85+ on the semantic text scale."""
        policy = TextToTextRetrieval(space)
        by_session = {}
        for r in ddb_trace:
            by_session.setdefault(r.prompt.session_id, []).append(r.prompt)
        sessions = [p for p in by_session.values() if len(p) >= 2]
        same = cosine(
            policy.query_embedding(sessions[0][0]),
            policy.query_embedding(sessions[0][1]),
        )
        cross = cosine(
            policy.query_embedding(sessions[0][0]),
            policy.query_embedding(sessions[7][0]),
        )
        assert same > 0.75
        assert cross < same

    def test_t2i_query_in_clip_band(
        self, space, large_model, ddb_trace
    ):
        policy = TextToImageRetrieval(space)
        by_session = {}
        for r in ddb_trace:
            by_session.setdefault(r.prompt.session_id, []).append(r.prompt)
        sessions = [p for p in by_session.values() if len(p) >= 2]
        sims = []
        for s in sessions[:30]:
            img = large_model.generate(s[0], seed="r").image
            sims.append(
                cosine(
                    policy.query_embedding(s[1]),
                    policy.index_embedding(s[0], img),
                )
            )
        assert 0.2 < np.mean(sims) < 0.32

    def test_embed_dims_match_space(self, space):
        assert TextToImageRetrieval(space).embed_dim == space.config.embed_dim
        assert TextToTextRetrieval(space).embed_dim == space.config.embed_dim


class TestKSelector:
    def test_miss_below_hit_threshold(self):
        sel = modm_default_selector()
        assert sel.decide(sel.hit_threshold - 0.001) is None

    def test_hit_at_threshold_picks_largest_admissible_k(self):
        sel = modm_default_selector()
        decided = sel.decide(sel.hit_threshold)
        admissible = [
            k
            for k in sel.k_set
            if sel.thresholds[k] <= sel.hit_threshold
        ]
        assert decided == max(admissible)

    def test_largest_k_for_high_similarity(self):
        sel = modm_default_selector()
        assert sel.decide(0.99) == max(sel.k_set)

    def test_monotone_in_similarity(self):
        sel = modm_default_selector()
        sims = np.linspace(0.0, 0.5, 100)
        ks = [sel.decide(s) or 0 for s in sims]
        assert all(b >= a for a, b in zip(ks, ks[1:]))

    def test_default_thresholds_monotone(self):
        for table in (MODM_DEFAULT_THRESHOLDS, NIRVANA_DEFAULT_THRESHOLDS):
            taus = [table[k] for k in sorted(table)]
            assert all(b >= a for a, b in zip(taus, taus[1:]))

    def test_modm_band_near_paper(self):
        """Calibrated thresholds live in the paper's 0.24-0.30 band."""
        sel = modm_default_selector()
        assert 0.20 < sel.hit_threshold < 0.27
        assert 0.25 < sel.thresholds[30] < 0.31

    def test_nirvana_band(self):
        """Conservative text-to-text regime (paper: 0.65-0.95)."""
        sel = nirvana_default_selector()
        assert 0.65 <= sel.hit_threshold <= 0.9
        assert sel.thresholds[30] >= 0.95

    def test_rejects_decreasing_thresholds(self):
        with pytest.raises(ValueError):
            KSelector(thresholds={5: 0.3, 10: 0.2})

    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            KSelector(thresholds={0: 0.3})

    def test_rejects_out_of_range_threshold(self):
        with pytest.raises(ValueError):
            KSelector(thresholds={5: 1.2})

    def test_shifted(self):
        sel = modm_default_selector()
        shifted = sel.shifted(0.01)
        for k in sel.k_set:
            assert np.isclose(
                shifted.thresholds[k], sel.thresholds[k] + 0.01
            )


class TestScaleKSteps:
    def test_reference_scale_identity(self):
        assert scale_k_steps(30, 50) == 30

    def test_turbo_scaling(self):
        # T=10: k in {5..30} maps to {1..6}.
        assert scale_k_steps(5, 10) == 1
        assert scale_k_steps(30, 10) == 6

    def test_bounds(self):
        with pytest.raises(ValueError):
            scale_k_steps(51, 50)
        with pytest.raises(ValueError):
            scale_k_steps(10, 0)


class TestDeriveThresholds:
    def _synthetic_samples(self, slope=2.0, offsets=None):
        """Factor curves: factor = 1 + slope*(sim - crossing_k)."""
        offsets = offsets or {
            k: 0.24 + 0.001 * k for k in DEFAULT_K_SET
        }
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(600):
            sim = float(rng.uniform(0.20, 0.32))
            factors = {
                k: 0.95 + slope * (sim - offsets[k])
                for k in DEFAULT_K_SET
            }
            samples.append((sim, factors))
        return samples, offsets

    def test_recovers_crossings(self):
        samples, offsets = self._synthetic_samples()
        thresholds = derive_thresholds(samples, alpha=0.95, window=40)
        for k in DEFAULT_K_SET:
            assert abs(thresholds[k] - offsets[k]) < 0.02

    def test_unreachable_k_omitted(self):
        samples, _ = self._synthetic_samples(
            offsets={k: (0.5 if k == 30 else 0.24) for k in DEFAULT_K_SET}
        )
        thresholds = derive_thresholds(
            samples, alpha=0.95, window=40, enforce_monotone=False
        )
        assert 30 not in thresholds
        assert 5 in thresholds

    def test_monotone_enforcement(self):
        samples, _ = self._synthetic_samples(
            offsets={
                5: 0.28, 10: 0.24, 15: 0.25, 20: 0.26, 25: 0.27, 30: 0.29
            }
        )
        thresholds = derive_thresholds(samples, alpha=0.95, window=40)
        taus = [thresholds[k] for k in sorted(thresholds)]
        assert all(b >= a - 1e-9 for a, b in zip(taus, taus[1:]))

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            derive_thresholds([])

    def test_invalid_alpha(self):
        samples, _ = self._synthetic_samples()
        with pytest.raises(ValueError):
            derive_thresholds(samples, alpha=0.0)
