"""IVF retrieval backend: recall, consistency, determinism, golden exact.

The ANN index may return *approximate* best matches, so these tests pin
the properties the serving system actually relies on:

* recall@1 >= 0.95 against the exact scan on a seeded clustered
  workload (the semantic-cache regime: prompts arrive as near-
  duplicates of cached content);
* structural consistency through insert/evict churn — retrieval never
  returns a tombstoned slot, and the inverted lists compact instead of
  growing without bound;
* batched queries are bit-identical to sequential single queries;
* the whole index (training included) is deterministic across runs;
* the default ``"exact"`` backend is byte-identical to the pre-index
  decision path (the seed golden regression pins the full engine; here
  a direct cache-level comparison pins the primitive).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import rng_for
from repro.core.ann import IVFIndex, IVFParams
from repro.core.cache import (
    RETRIEVAL_SECONDS_PER_ENTRY,
    VectorCache,
)
from repro.core.config import MoDMConfig


def clustered_embeddings(
    n: int,
    dim: int = 50,
    n_topics: int = 256,
    noise: float = 0.25,
    seed: str = "ann-test",
) -> np.ndarray:
    """Unit rows drawn around ``n_topics`` seeded topic directions —
    the clustered geometry a semantic cache accumulates."""
    rng = rng_for(seed, n, dim, n_topics)
    topics = rng.standard_normal((n_topics, dim))
    topics /= np.linalg.norm(topics, axis=1, keepdims=True)
    rows = topics[rng.integers(0, n_topics, n)]
    rows = rows + noise * rng.standard_normal((n, dim))
    rows /= np.linalg.norm(rows, axis=1, keepdims=True)
    return rows


def near_duplicate_queries(
    data: np.ndarray, n_queries: int, noise: float = 0.1,
    seed: str = "ann-query",
) -> np.ndarray:
    """Perturbations of random cached rows — the cache-hit regime."""
    rng = rng_for(seed, n_queries)
    picks = rng.choice(data.shape[0], size=n_queries, replace=False)
    queries = data[picks] + noise * rng.standard_normal(
        (n_queries, data.shape[1])
    )
    return queries / np.linalg.norm(queries, axis=1, keepdims=True)


def build_pair(n=20_000, dim=50, nprobe=16, policy="fifo"):
    """Exact and IVF caches filled with the same clustered workload."""
    data = clustered_embeddings(n, dim)
    exact = VectorCache(capacity=n, embed_dim=dim, policy=policy)
    ivf = VectorCache(
        capacity=n,
        embed_dim=dim,
        policy=policy,
        backend="ivf",
        ann=IVFParams(nprobe=nprobe, seed="ann-test"),
    )
    for i in range(n):
        exact.insert(i, data[i], now=float(i))
        ivf.insert(i, data[i], now=float(i))
    return data, exact, ivf


@pytest.fixture(scope="module")
def pair():
    return build_pair()


class TestRecall:
    def test_recall_at_1_meets_floor(self, pair):
        data, exact, ivf = pair
        queries = near_duplicate_queries(data, 400)
        agree = 0
        for query in queries:
            truth, _ = exact.retrieve(query)
            found, _ = ivf.retrieve(query)
            agree += found.payload == truth.payload
        assert ivf.index.trained
        assert agree / len(queries) >= 0.95

    @staticmethod
    def _recall_at_k(data, exact, ivf, k=10):
        queries = near_duplicate_queries(data, 100, seed="ann-topk")
        covered = 0
        total = 0
        for query in queries:
            truth = {
                e.payload for e, _ in exact.retrieve_topk(query, k)
            }
            found = {
                e.payload for e, _ in ivf.retrieve_topk(query, k)
            }
            covered += len(truth & found)
            total += len(truth)
        return covered / total

    def test_recall_at_k_meets_floor(self, pair):
        """Deep top-k recall: decent at the default probe width, and
        >= 0.95 when probes widen (same seed => same trained centroids,
        and a wider probe set is a superset, so recall is monotone in
        ``nprobe``)."""
        data, exact, ivf = pair
        narrow = self._recall_at_k(data, exact, ivf)
        assert narrow >= 0.6
        _, _, wide_ivf = build_pair(nprobe=64)
        wide = self._recall_at_k(data, exact, wide_ivf)
        assert wide >= max(0.95, narrow)

    def test_ivf_similarity_matches_entry(self, pair):
        """Returned similarity is the exact re-ranked cosine of the
        returned entry (the approximation is *which* entry, never the
        score)."""
        data, _, ivf = pair
        for query in near_duplicate_queries(data, 20, seed="ann-sim"):
            entry, sim = ivf.retrieve(query)
            qunit = query / np.linalg.norm(query)
            expected = float(entry.embedding @ qunit)
            assert sim == pytest.approx(expected, rel=0, abs=1e-12)

    def test_sublinear_modelled_latency(self, pair):
        _, exact, ivf = pair
        assert ivf.scan_entries() < exact.scan_entries() / 5
        assert ivf.retrieval_latency_s() < exact.retrieval_latency_s()


class TestBatchEquivalence:
    def test_batch_matches_sequential_bit_for_bit(self, pair):
        data, _, ivf = pair
        queries = near_duplicate_queries(data, 64, seed="ann-batch")
        batched = ivf.retrieve_batch(queries)
        sequential = [ivf.retrieve(q) for q in queries]
        for (be, bs), (se, ss) in zip(batched, sequential):
            assert be is se
            assert bs == ss


class TestChurnConsistency:
    def test_never_returns_dead_slot(self):
        """FIFO churn at 2x capacity: every retrieval lands on a live
        entry whose slot agrees with the cache's own table."""
        n = 2_048
        dim = 32
        data = clustered_embeddings(
            4 * n, dim, n_topics=64, seed="ann-churn"
        )
        ivf = VectorCache(
            capacity=n,
            embed_dim=dim,
            backend="ivf",
            ann=IVFParams(
                nlist=32, nprobe=4, train_min=256, seed="ann-churn"
            ),
        )
        live_payloads = set()
        for i in range(data.shape[0]):
            evicted = ivf.insert(i, data[i], now=float(i))
            live_payloads.add(i)
            if evicted is not None:
                live_payloads.discard(evicted.payload)
            if i % 64 == 0:
                entry, _ = ivf.retrieve(data[i])
                assert entry is not None
                assert entry.payload in live_payloads
        assert ivf.index.trained
        assert ivf.evictions == 3 * n

    def test_topk_never_duplicates_entries(self):
        """Slot reuse leaves stale ids in old cells; dedup must keep
        any entry from appearing twice in one top-k result."""
        n = 512
        dim = 16
        data = clustered_embeddings(
            3 * n, dim, n_topics=16, seed="ann-dup"
        )
        ivf = VectorCache(
            capacity=n,
            embed_dim=dim,
            backend="ivf",
            ann=IVFParams(
                nlist=8, nprobe=8, train_min=128, seed="ann-dup"
            ),
        )
        for i in range(data.shape[0]):
            ivf.insert(i, data[i], now=float(i))
        for query in near_duplicate_queries(data[-n:], 20, seed="q"):
            got = ivf.retrieve_topk(query, 10)
            ids = [e.entry_id for e, _ in got]
            assert len(ids) == len(set(ids))

    def test_tombstone_compaction_bounds_lists(self):
        """Inverted lists stay O(live members), not O(inserts ever)."""
        n = 1_024
        dim = 16
        data = clustered_embeddings(
            8 * n, dim, n_topics=16, seed="ann-compact"
        )
        ivf = VectorCache(
            capacity=n,
            embed_dim=dim,
            backend="ivf",
            ann=IVFParams(
                nlist=8,
                nprobe=2,
                train_min=512,
                retrain_inserts=10**9,
                seed="ann-compact",
            ),
        )
        for i in range(data.shape[0]):
            ivf.insert(i, data[i], now=float(i))
            if i % 256 == 0:
                ivf.retrieve(data[i])  # trains lazily, then probes
        index = ivf.index
        assert index.trained
        assert index.trainings == 1
        total_listed = sum(len(cell) for cell in index._lists)
        assert total_listed <= 2 * n + 16 * len(index._lists)

    def test_cell_counts_match_live_members(self):
        """Running per-cell sums/counts stay consistent under churn."""
        n = 1_024
        dim = 16
        data = clustered_embeddings(
            4 * n, dim, n_topics=16, seed="ann-sums"
        )
        ivf = VectorCache(
            capacity=n,
            embed_dim=dim,
            backend="ivf",
            ann=IVFParams(
                nlist=8, nprobe=2, train_min=512, seed="ann-sums"
            ),
        )
        for i in range(data.shape[0]):
            ivf.insert(i, data[i], now=float(i))
            if i % 128 == 0:
                ivf.retrieve(data[i])  # lazy-trains, then probes
        index = ivf.index
        assert index.trained
        assert int(index._cell_counts.sum()) == len(ivf)
        coarse = ivf.coarse_centroids()
        assert coarse is not None
        assert coarse.shape[1] == dim
        # The count-weighted mean of the cell means is the cache mean.
        weighted = (
            index._cell_sums[index._cell_counts > 0].sum(axis=0)
            / len(ivf)
        )
        np.testing.assert_allclose(
            weighted, ivf.centroid(), atol=1e-9
        )


class TestTieBreaks:
    def test_duplicate_embeddings_resolve_to_lowest_slot(self):
        """Identical cached embeddings tie exactly in the block scan;
        retrieve and retrieve_topk must agree on the lowest slot id."""
        dim = 16
        base = clustered_embeddings(2_048, dim, n_topics=8, seed="tie")
        ivf = VectorCache(
            capacity=2_100,
            embed_dim=dim,
            backend="ivf",
            ann=IVFParams(
                nlist=8, nprobe=8, train_min=256, seed="tie"
            ),
        )
        for i in range(base.shape[0]):
            ivf.insert(i, base[i], now=float(i))
        ivf.retrieve(base[0])  # train before the duplicates land
        # Duplicate one embedding into several later slots.
        dup = base[123]
        for j in range(3):
            ivf.insert(10_000 + j, dup, now=3000.0 + j)
        entry, _ = ivf.retrieve(dup)
        top = ivf.retrieve_topk(dup, 1)
        assert entry.entry_id == top[0][0].entry_id
        # Sequential fills use slots 0,1,2,... so the original copy in
        # slot 123 is the lowest-slot holder of this embedding.
        assert ivf._slot_of[entry.entry_id] == 123


class TestDeterminism:
    def test_identical_across_runs(self):
        results = []
        for _ in range(2):
            data, _, ivf = build_pair(n=4_096, nprobe=8)
            queries = near_duplicate_queries(
                data, 50, seed="ann-det"
            )
            results.append(
                [
                    (e.entry_id, s)
                    for e, s in (ivf.retrieve(q) for q in queries)
                ]
            )
        assert results[0] == results[1]

    def test_training_is_seeded(self):
        data = clustered_embeddings(2_048, 32, seed="ann-seeded")
        norms = np.linalg.norm(data, axis=1, keepdims=True)
        live = np.ones(2_048, dtype=bool)
        params = IVFParams(nlist=16, train_min=512, seed="fixed")
        a = IVFIndex(data / norms, live, params)
        b = IVFIndex(data / norms, live, params)
        a.train()
        b.train()
        np.testing.assert_array_equal(a._centroids, b._centroids)


class TestExactBackendGolden:
    """``retrieval_backend="exact"`` must be bit-identical to the
    pre-index cache (which is also pinned end-to-end by the seed golden
    regression in tests/integration/test_seed_regression.py)."""

    def test_default_config_backend_is_exact(self):
        assert MoDMConfig().retrieval_backend == "exact"

    def test_exact_cache_has_no_index(self):
        cache = VectorCache(capacity=8, embed_dim=4)
        assert cache.backend == "exact"
        assert cache.index is None

    def test_exact_decisions_bit_for_bit(self):
        """An explicitly-exact cache replays the identical (entry,
        similarity) stream as a default-constructed one."""
        dim = 24
        data = clustered_embeddings(
            2_000, dim, n_topics=32, seed="ann-golden"
        )
        default = VectorCache(capacity=500, embed_dim=dim)
        explicit = VectorCache(
            capacity=500, embed_dim=dim, backend="exact"
        )
        queries = near_duplicate_queries(
            data, 200, seed="ann-golden-q"
        )
        for i in range(data.shape[0]):
            default.insert(i, data[i], now=float(i))
            explicit.insert(i, data[i], now=float(i))
            if i % 10 == 0:
                query = queries[(i // 10) % queries.shape[0]]
                d_entry, d_sim = default.retrieve(query)
                e_entry, e_sim = explicit.retrieve(query)
                assert d_entry.entry_id == e_entry.entry_id
                assert d_sim == e_sim

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="retrieval backend"):
            VectorCache(capacity=8, embed_dim=4, backend="hnsw")
        with pytest.raises(ValueError, match="retrieval_backend"):
            MoDMConfig(retrieval_backend="hnsw")


class TestShardedIVF:
    def test_sharded_cache_threads_backend(self):
        from repro.core.cache import ShardedVectorCache

        data = clustered_embeddings(
            4_096, 24, n_topics=32, seed="ann-shard"
        )
        sharded = ShardedVectorCache(
            capacity=4_096,
            embed_dim=24,
            n_shards=4,
            backend="ivf",
            ann=IVFParams(
                nlist=8, nprobe=8, train_min=256, seed="ann-shard"
            ),
        )
        for i in range(data.shape[0]):
            sharded.insert(i, data[i], now=float(i))
        assert sharded.backend == "ivf"
        entry, sim = sharded.retrieve(data[7])
        assert entry is not None and sim > 0.5
        for shard in sharded._shards:
            assert shard.index is not None and shard.index.trained
        coarse = sharded.coarse_centroids()
        assert coarse is not None
        # One sketch row per non-empty cell across all shards.
        assert coarse.shape == (4 * 8, 24)
        # API parity with VectorCache: modelled scan is sublinear and
        # consistent with the latency model.
        assert sharded.scan_entries() < len(sharded)
        assert sharded.retrieval_latency_s() == pytest.approx(
            sharded.scan_entries() * RETRIEVAL_SECONDS_PER_ENTRY
        )


class TestServingIntegration:
    def test_modm_system_serves_with_ivf_backend(self, space):
        """End-to-end: an IVF-backed MoDM engine trains mid-run and
        keeps making hit/miss decisions through the indexed path."""
        from repro.core.serving import MoDMSystem
        from repro.core.config import ClusterConfig
        from repro.workloads import (
            DiffusionDBConfig,
            diffusiondb_trace,
        )

        config = MoDMConfig(
            cluster=ClusterConfig(gpu_name="MI210", n_workers=4),
            cache_capacity=400,
            small_models=("sdxl",),
            retrieval_backend="ivf",
            ann_nlist=16,
            ann_nprobe=4,
            ann_train_min=64,
        )
        system = MoDMSystem(space, config)
        trace = diffusiondb_trace(
            space,
            DiffusionDBConfig(n_requests=200, seed="ann-serving"),
        )
        system.warm_cache([r.prompt for r in trace.requests[:80]])
        report = system.run(trace.slice(80, 200).rebase())
        assert system.cache.index is not None
        assert system.cache.index.trained
        assert report.n_completed == 120
        assert report.hit_rate > 0.0
        # The modelled scan is sublinear once the index is trained.
        assert system.cache.scan_entries() < len(system.cache)
