"""Tiered cache: cold store, parity, promotion, snapshots, integration.

The tiered cache's core claim is *residency independence*: hot rows are
bit-exact copies of cold rows, so where an entry lives can change
modelled latency but never a retrieval result.  These tests pin that
claim three ways — against an exact brute-force cache, across hot-tier
sizes under hypothesis-driven churn, and across snapshot/restore
boundaries (including a fresh process-like object reattaching to a
durable cold file).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._rng import rng_for
from repro.core.ann import IVFParams
from repro.core.cache import VectorCache, make_image_cache
from repro.core.config import (
    ClusterConfig,
    ClusterRoutingConfig,
    MoDMConfig,
)
from repro.core.tiering import (
    COLD_FETCH_UNITS,
    ColdStore,
    TieredCacheConfig,
    TieredImageCache,
    TieredVectorCache,
)

DIM = 16


def embeddings(n: int, seed: str = "tiering-test") -> np.ndarray:
    rows = rng_for(seed, n, DIM).standard_normal((n, DIM))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def exact_tiered(capacity: int, **tiering_kw) -> TieredVectorCache:
    """A tiered cache parameterized to be *exactly* exact: every cell
    probed and a shortlist as wide as the cache, so the f64 re-rank
    covers every live entry."""
    kw = dict(shortlist=capacity, cold_dir=None)
    kw.update(tiering_kw)
    return TieredVectorCache(
        capacity=capacity,
        embed_dim=DIM,
        tiering=TieredCacheConfig(**kw),
        ann=IVFParams(nlist=8, nprobe=8, train_min=32, seed="tier-t"),
    )


def churn(cache, data: np.ndarray, hit_every: int = 3) -> None:
    """Insert every row; periodically retrieve-and-hit to drive
    promotions (and demotions once the hot store fills)."""
    for i in range(data.shape[0]):
        cache.insert(i, data[i], now=float(i))
        if i % hit_every == 0:
            entry, _ = cache.retrieve(data[i // 2])
            if entry is not None:
                cache.record_hit(entry, now=float(i))


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestTieredCacheConfig:
    def test_defaults_valid(self):
        cfg = TieredCacheConfig()
        assert cfg.block_dtype == "fp16"
        assert cfg.tier_policy == "utility"

    @pytest.mark.parametrize(
        "kw",
        [
            {"hot_capacity": -1},
            {"promote_hits": 0},
            {"tier_policy": "nope"},
            {"block_dtype": "fp8"},
            {"shortlist": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ValueError):
            TieredCacheConfig(**kw)

    def test_resolved_hot_capacity(self):
        assert TieredCacheConfig().resolved_hot_capacity(800) == 100
        assert TieredCacheConfig().resolved_hot_capacity(4) == 1
        cfg = TieredCacheConfig(hot_capacity=50)
        assert cfg.resolved_hot_capacity(800) == 50
        # Explicit hot capacity clamps to the cache capacity.
        assert cfg.resolved_hot_capacity(20) == 20

    def test_modm_config_requires_ivf_fifo_unsharded(self):
        base = dict(
            cluster=ClusterConfig(gpu_name="MI210", n_workers=2),
            cache_capacity=100,
            small_models=("sdxl",),
            cache_tiering=TieredCacheConfig(),
        )
        with pytest.raises(ValueError, match="ivf"):
            MoDMConfig(**base)
        with pytest.raises(ValueError, match="shard"):
            MoDMConfig(
                **base, retrieval_backend="ivf", cache_shards=2
            )
        with pytest.raises(ValueError, match="fifo"):
            MoDMConfig(
                **base, retrieval_backend="ivf", cache_policy="utility"
            )
        cfg = MoDMConfig(**base, retrieval_backend="ivf")
        assert cfg.cache_tiering is not None

    def test_cache_requires_fifo_and_ivf(self):
        with pytest.raises(ValueError, match="fifo"):
            TieredVectorCache(
                10, DIM, TieredCacheConfig(), policy="utility"
            )
        with pytest.raises(ValueError, match="ivf"):
            TieredVectorCache(
                10, DIM, TieredCacheConfig(), backend="exact"
            )

    def test_make_image_cache_dispatches_on_tiering(self):
        cache = make_image_cache(
            capacity=32,
            embed_dim=DIM,
            tiering=TieredCacheConfig(),
            backend="ivf",
        )
        assert isinstance(cache, TieredImageCache)
        with pytest.raises(ValueError, match="shard"):
            make_image_cache(
                capacity=32,
                embed_dim=DIM,
                n_shards=2,
                tiering=TieredCacheConfig(),
                backend="ivf",
            )


# ----------------------------------------------------------------------
# Cold store
# ----------------------------------------------------------------------
class TestColdStore:
    def test_append_read_round_trip(self):
        store = ColdStore(DIM)
        data = embeddings(40, seed="cold-rt")
        start = store.append_rows(data[:25])
        assert start == 0
        assert store.append_rows(data[25:]) == 25
        assert store.rows == 40
        np.testing.assert_array_equal(store.read_row(7), data[7])
        picks = np.array([3, 39, 0, 17])
        np.testing.assert_array_equal(
            store.read_rows(picks), data[picks]
        )
        store.close()

    def test_chunks_stream_whole_extent(self):
        store = ColdStore(DIM)
        data = embeddings(100, seed="cold-chunks")
        store.append_rows(data)
        seen = []
        for start, rows in store.chunks(chunk_rows=33):
            assert start == sum(r.shape[0] for _, r in seen)
            seen.append((start, rows))
        np.testing.assert_array_equal(
            np.vstack([r for _, r in seen]), data
        )
        store.close()

    def test_rewind_backward_then_overwrite(self):
        store = ColdStore(DIM)
        data = embeddings(30, seed="cold-rw")
        store.append_rows(data[:20])
        store.append_rows(data[20:])
        store.rewind(20)
        assert store.rows == 20
        # Appends after a rewind overwrite the abandoned suffix.
        fresh = embeddings(5, seed="cold-rw-2")
        assert store.append_rows(fresh) == 20
        np.testing.assert_array_equal(store.read_row(22), fresh[2])
        store.close()

    def test_rewind_beyond_extent_rejected(self):
        store = ColdStore(DIM)
        store.append_rows(embeddings(10, seed="cold-ov"))
        with pytest.raises(ValueError, match="cannot rewind"):
            store.rewind(11)
        store.close()

    def test_reattach_persistent_file(self, tmp_path):
        path = str(tmp_path / "cold.f64")
        data = embeddings(12, seed="cold-persist")
        first = ColdStore(DIM, path=path)
        first.append_rows(data)
        first.close()
        # A fresh store starts with cursor 0; rewinding *forward* to the
        # snapshot's extent (which the on-disk file vouches for) exposes
        # the rows again — the cross-process warm-start handshake.
        second = ColdStore(DIM, path=path)
        assert second.rows == 0
        second.rewind(12)
        np.testing.assert_array_equal(second.read_rows(
            np.arange(12)), data)
        second.close()

    def test_shape_validation(self):
        store = ColdStore(DIM)
        with pytest.raises(ValueError, match="shape"):
            store.append_rows(np.zeros((3, DIM + 1)))
        with pytest.raises(IndexError):
            store.read_row(0)
        store.close()


# ----------------------------------------------------------------------
# Retrieval parity with the exact cache
# ----------------------------------------------------------------------
class TestExactParity:
    N, CAP = 600, 400

    def _pair(self):
        data = embeddings(self.N, seed="parity")
        exact = VectorCache(
            capacity=self.CAP, embed_dim=DIM, policy="fifo"
        )
        tiered = exact_tiered(self.CAP, hot_capacity=40)
        for i in range(self.N):
            exact.insert(i, data[i], now=float(i))
            tiered.insert(i, data[i], now=float(i))
        return data, exact, tiered

    def test_top1_matches_exact_after_churn(self):
        data, exact, tiered = self._pair()
        queries = embeddings(60, seed="parity-q")
        for q in queries:
            e_entry, e_sim = exact.retrieve(q)
            t_entry, t_sim = tiered.retrieve(q)
            assert t_sim == e_sim
            assert t_entry.payload == e_entry.payload

    def test_topk_matches_exact(self):
        data, exact, tiered = self._pair()
        for q in embeddings(20, seed="parity-topk"):
            e_top = exact.retrieve_topk(q, 5)
            t_top = tiered.retrieve_topk(q, 5)
            assert [s for _, s in t_top] == [s for _, s in e_top]
            assert [e.payload for e, _ in t_top] == [
                e.payload for e, _ in e_top
            ]

    def test_returned_similarity_is_exact_dot(self):
        data, _, tiered = self._pair()
        q = embeddings(1, seed="parity-sim")[0]
        entry, sim = tiered.retrieve(q)
        assert sim == float(entry.embedding @ q)

    def test_batch_matches_sequential(self):
        _, _, tiered = self._pair()
        queries = embeddings(10, seed="parity-batch")
        batched = tiered.retrieve_batch(queries)
        for i, (entry, sim) in enumerate(batched):
            # retrieve_batch routes through retrieve per row.
            single_entry, single_sim = tiered.retrieve(queries[i])
            assert sim == single_sim
            assert entry.payload == single_entry.payload


class TestResidencyIndependence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_hot_capacity_never_changes_results(self, seed):
        data = embeddings(120, seed=f"resid-{seed}")
        tiny = exact_tiered(80, hot_capacity=2, promote_hits=1)
        huge = exact_tiered(80, hot_capacity=80, promote_hits=1)
        for cache in (tiny, huge):
            churn(cache, data, hit_every=2)
        # The tiny cache was forced through promotion/demotion churn,
        # the huge one promoted freely — results must be identical.
        assert tiny.demotions > 0
        assert huge.demotions == 0
        for q in embeddings(25, seed=f"resid-q-{seed}"):
            t_entry, t_sim = tiny.retrieve(q)
            h_entry, h_sim = huge.retrieve(q)
            assert t_sim == h_sim
            assert t_entry.payload == h_entry.payload


# ----------------------------------------------------------------------
# Tier movement
# ----------------------------------------------------------------------
class TestPromotionDemotion:
    def test_insert_starts_cold_promotes_on_nth_hit(self):
        cache = exact_tiered(16, hot_capacity=4, promote_hits=2)
        data = embeddings(8, seed="promo")
        for i in range(8):
            cache.insert(i, data[i], now=float(i))
        entry, _ = cache.retrieve(data[3])
        assert entry.payload == 3 and not entry.hot
        cache.record_hit(entry, now=10.0)
        assert not entry.hot and cache.promotions == 0
        cache.record_hit(entry, now=11.0)
        assert entry.hot and cache.promotions == 1
        assert cache.hot_count == 1

    def test_full_hot_store_demotes_a_victim(self):
        cache = exact_tiered(16, hot_capacity=2, promote_hits=1)
        data = embeddings(6, seed="demo")
        for i in range(6):
            cache.insert(i, data[i], now=float(i))
        for i in range(3):
            entry, _ = cache.retrieve(data[i])
            cache.record_hit(entry, now=float(10 + i))
        assert cache.promotions == 3
        assert cache.demotions == 1
        assert cache.hot_count == 2

    def test_tier_events_fire_in_order(self):
        cache = exact_tiered(16, hot_capacity=1, promote_hits=1)
        events = []
        cache.on_tier_event = lambda now, kind, slot, eid: events.append(
            (now, kind, slot, eid)
        )
        data = embeddings(4, seed="events")
        for i in range(4):
            cache.insert(i, data[i], now=float(i))
        for i in range(2):
            entry, _ = cache.retrieve(data[i])
            cache.record_hit(entry, now=float(10 + i))
        kinds = [kind for _, kind, _, _ in events]
        assert kinds == ["promote", "demote", "promote"]
        # Events carry the live slot/entry-id pair at fire time.
        for _, _, slot, eid in events:
            assert 0 <= slot < cache.capacity

    def test_stale_view_is_inert(self):
        cache = exact_tiered(4, hot_capacity=2, promote_hits=1)
        data = embeddings(9, seed="stale")
        for i in range(4):
            cache.insert(i, data[i], now=float(i))
        entry, _ = cache.retrieve(data[0])
        before = cache.promotions
        # Wrap the ring: every original slot is recycled.
        for i in range(4, 9):
            cache.insert(i, data[i], now=float(i))
        cache.record_hit(entry, now=20.0)
        assert cache.promotions == before

    def test_eviction_frees_hot_row(self):
        cache = exact_tiered(4, hot_capacity=4, promote_hits=1)
        data = embeddings(8, seed="evict-hot")
        for i in range(4):
            cache.insert(i, data[i], now=float(i))
            entry, _ = cache.retrieve(data[i])
            cache.record_hit(entry, now=float(i))
        assert cache.hot_count == 4
        evicted = cache.insert(4, data[4], now=4.0)
        assert evicted is not None and evicted.entry_id == 0
        # The detached entry keeps a real embedding copy.
        np.testing.assert_array_equal(evicted.embedding, data[0])
        assert cache.hot_count == 3

    def test_cold_latency_exceeds_hot_latency(self):
        cold = exact_tiered(64, hot_capacity=1, promote_hits=10_000)
        hot = exact_tiered(64, hot_capacity=64, promote_hits=1)
        data = embeddings(64, seed="latency")
        for i in range(64):
            cold.insert(i, data[i], now=float(i))
            hot.insert(i, data[i], now=float(i))
        for i in range(64):
            entry, _ = hot.retrieve(data[i])
            hot.record_hit(entry, now=float(100 + i))
        assert hot.hot_count == 64
        assert cold.hot_count == 0
        assert cold.scan_entries() > hot.scan_entries()
        assert (
            cold.retrieval_latency_s() > hot.retrieval_latency_s()
        )
        # An all-cold untrained cache pays COLD_FETCH_UNITS per entry.
        tiny = exact_tiered(8, hot_capacity=1, promote_hits=10_000)
        tiny.insert(0, data[0], now=0.0)
        assert tiny.scan_entries() == 1 + (COLD_FETCH_UNITS - 1)


# ----------------------------------------------------------------------
# Snapshot / restore / clear
# ----------------------------------------------------------------------
def query_digest(cache, seed: str = "digest", n: int = 40):
    out = []
    for q in embeddings(n, seed=seed):
        entry, sim = cache.retrieve(q)
        out.append((entry.payload if entry else None, sim))
    return out


class TestSnapshotRestore:
    def test_restore_reproduces_results_in_process(self):
        cache = exact_tiered(64, hot_capacity=8, promote_hits=1)
        data = embeddings(200, seed="snap")
        churn(cache, data[:120])
        state = cache.snapshot()
        before = query_digest(cache)
        hot_before = cache.hot_count
        # Diverge: more churn, then restore back.
        churn(cache, data[120:])
        assert query_digest(cache) != before
        cache.restore(state)
        assert query_digest(cache) == before
        assert cache.hot_count == hot_before
        assert len(cache) == min(64, 120)

    def test_restore_replay_matches_original(self):
        data = embeddings(160, seed="snap-replay")
        a = exact_tiered(48, hot_capacity=6, promote_hits=1)
        churn(a, data[:100])
        state = a.snapshot()
        churn(a, data[100:])
        after = query_digest(a, seed="snap-replay-q")
        counters = (a.promotions, a.demotions, a.evictions)
        # Restore to the snapshot and replay the same suffix: the
        # rebuilt blocks and hot rows must reproduce the run bit-for-bit
        # (an anonymous cold file restores in-process only; the durable
        # cross-object path is tested separately).
        a.restore(state)
        churn(a, data[100:])
        assert query_digest(a, seed="snap-replay-q") == after
        assert (a.promotions, a.demotions, a.evictions) == counters

    def test_fresh_object_reattaches_durable_cold_file(self, tmp_path):
        cold_dir = str(tmp_path / "tier")
        data = embeddings(120, seed="snap-durable")
        a = exact_tiered(
            48, hot_capacity=6, promote_hits=1, cold_dir=cold_dir
        )
        churn(a, data)
        state = a.snapshot()
        before = query_digest(a, seed="snap-durable-q")
        a.cold_store.close()
        # A brand-new cache object (fresh process stand-in) adopts the
        # snapshot against the on-disk cold file.
        b = exact_tiered(
            48, hot_capacity=6, promote_hits=1, cold_dir=cold_dir
        )
        b.restore(state)
        assert query_digest(b, seed="snap-durable-q") == before
        assert b.hot_count == a.hot_count

    def test_snapshot_is_block_and_hot_free(self):
        cache = exact_tiered(64, hot_capacity=8, promote_hits=1)
        churn(cache, embeddings(100, seed="snap-lean"))
        state = cache.snapshot()
        assert state.index_state.blocks is None
        field_names = set(vars(state))
        assert not any("hot_store" in name for name in field_names)

    def test_restore_shape_mismatch_rejected(self):
        cache = exact_tiered(64, hot_capacity=8)
        state = cache.snapshot()
        other = exact_tiered(32, hot_capacity=8)
        with pytest.raises(ValueError, match="mismatch"):
            other.restore(state)

    def test_clear_then_refill_matches_fresh(self):
        data = embeddings(90, seed="clear")
        a = exact_tiered(32, hot_capacity=4, promote_hits=1)
        churn(a, data[:50])
        a.clear()
        assert len(a) == 0 and a.hot_count == 0
        assert a.cold_store.rows == 0
        churn(a, data[50:])
        b = exact_tiered(32, hot_capacity=4, promote_hits=1)
        # Align id streams: clear() keeps the counter position.
        for _ in range(50):
            next(b._ids)
        churn(b, data[50:])
        assert query_digest(a, seed="clear-q") == query_digest(
            b, seed="clear-q"
        )


# ----------------------------------------------------------------------
# Bulk load
# ----------------------------------------------------------------------
class TestBulkLoad:
    def test_matches_incremental_inserts(self):
        data = embeddings(400, seed="bulk")
        bulk = exact_tiered(400)
        bulk.bulk_load(
            lambda: (data[i : i + 150] for i in range(0, 400, 150)),
            now=0.0,
        )
        incr = exact_tiered(400)
        for i in range(400):
            incr.insert(None, data[i], now=0.0)
        assert len(bulk) == 400
        for q in embeddings(30, seed="bulk-q"):
            _, b_sim = bulk.retrieve(q)
            _, i_sim = incr.retrieve(q)
            assert b_sim == i_sim

    def test_requires_empty_cache(self):
        cache = exact_tiered(16)
        cache.insert(0, embeddings(1, seed="bulk-ne")[0], now=0.0)
        with pytest.raises(ValueError, match="empty"):
            cache.bulk_load(lambda: iter(()), now=0.0)

    def test_overflow_rejected(self):
        cache = exact_tiered(8)
        data = embeddings(9, seed="bulk-ov")
        with pytest.raises(ValueError, match="overflows"):
            cache.bulk_load(lambda: iter((data,)), now=0.0)


# ----------------------------------------------------------------------
# Serving / cluster integration
# ----------------------------------------------------------------------
class TestServingIntegration:
    def _config(self, **overrides):
        defaults = dict(
            cluster=ClusterConfig(gpu_name="MI210", n_workers=4),
            cache_capacity=300,
            small_models=("sdxl",),
            retrieval_backend="ivf",
            cache_tiering=TieredCacheConfig(
                hot_capacity=32, promote_hits=1
            ),
        )
        defaults.update(overrides)
        return MoDMConfig(**defaults)

    def test_end_to_end_run_completes(self, space, ddb_trace):
        from repro.core.serving import MoDMSystem

        trace = ddb_trace.slice(0, 120).rebase()
        system = MoDMSystem(space, self._config())
        assert isinstance(system.cache, TieredImageCache)
        report = system.run(trace)
        assert report.n_completed == len(trace)
        # Hits drove promotions through the serving loop.
        if report.hit_rate > 0:
            assert system.cache.promotions > 0

    def test_tiered_run_is_deterministic(self, space, ddb_trace):
        from repro.core.serving import MoDMSystem

        trace = ddb_trace.slice(0, 100).rebase()
        r1 = MoDMSystem(space, self._config()).run(trace)
        r2 = MoDMSystem(space, self._config()).run(trace)
        assert np.allclose(r1.latencies(), r2.latencies())
        assert r1.hit_rate == r2.hit_rate

    def test_tier_events_are_journaled(self, space, ddb_trace):
        from repro.core.config import JournalConfig
        from repro.core.serving import MoDMSystem

        trace = ddb_trace.slice(0, 120).rebase()
        system = MoDMSystem(
            space,
            self._config(journal=JournalConfig()),
        )
        report = system.run(trace)
        counts = system._journal.kind_counts()
        assert counts["promote"] == system.cache.promotions
        assert counts["demote"] == system.cache.demotions
        if report.hit_rate > 0:
            assert counts["promote"] > 0

    def test_cluster_warm_rejoin_with_tiering(
        self, space, ddb_trace, tmp_path
    ):
        from repro.core.cluster_router import modm_cluster
        from repro.core.config import (
            FailureEvent,
            FailurePlan,
            JournalConfig,
        )

        trace = ddb_trace.slice(0, 160).rebase()
        span = trace.requests[-1].arrival_s
        config = self._config(
            journal=JournalConfig(snapshot_period_s=30.0),
            cache_tiering=TieredCacheConfig(
                hot_capacity=16,
                promote_hits=1,
                cold_dir=str(tmp_path / "fleet"),
            ),
        )
        system = modm_cluster(
            space,
            config,
            ClusterRoutingConfig(
                n_replicas=2,
                policy="cache_affinity",
                failures=FailurePlan(
                    events=(
                        FailureEvent(
                            time_s=0.4 * span, replica=1, action="kill"
                        ),
                        FailureEvent(
                            time_s=0.55 * span,
                            replica=1,
                            action="restart",
                            warm=True,
                        ),
                    ),
                    recovery_window_s=60.0,
                ),
            ),
        )
        report = system.run(trace)
        assert report.failures[0].warm
        assert report.n_completed == len(report.fleet.records)
        # Each replica owns a private cold file under the shared dir.
        for i, replica in enumerate(system.replicas):
            path = replica.cache.cold_store.path
            assert f"replica-{i}" in path
