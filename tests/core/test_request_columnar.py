"""Columnar RequestStore: vectorized reductions pinned to the
per-record reference path, bit for bit.

Engine-produced reports share one :class:`RequestStore`, so
``ServingReport`` accessors and ``summarize_slo`` reduce whole columns
with single numpy gathers.  Hand-assembled records (each constructed
standalone, i.e. carrying a private store) exercise the original
per-record loops.  These properties build the same logical record set
both ways and assert every public reduction answers identically —
including float-for-float equality of ``latencies()``, whose
elementwise IEEE subtraction the columnar path replays in record
order.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.energy import EnergyReport
from repro.cluster.stats import StatsCollector
from repro.core.request import (
    Decision,
    RequestRecord,
    RequestStore,
    SLORejection,
    columnar_view,
)
from repro.core.serving import ServingReport
from repro.core.slo import summarize_slo

_SLOW = settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)

_TIMES = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, width=64
)

#: One request's lifecycle: optional stages are drawn as offsets from
#: arrival so generated timelines stay physically ordered.
_SPEC = st.fixed_dictionaries(
    {
        "arrival": _TIMES,
        "dur": st.one_of(st.none(), _TIMES),
        "deadline": st.one_of(st.none(), _TIMES),
        "hit": st.booleans(),
        "k": st.integers(min_value=0, max_value=50),
        "sim": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        "shed": st.booleans(),
        "degraded": st.booleans(),
        "slo": st.sampled_from([None, "strict", "relaxed"]),
    }
)

#: Decision only requires hits to carry *some* retrieved payload.
_IMAGE = object()


def _apply(record, spec, decision, rejection):
    record.decision = decision
    record.enqueued_s = spec["arrival"]
    if spec["deadline"] is not None:
        record.deadline_s = spec["arrival"] + spec["deadline"]
    if rejection is not None:
        record.rejection = rejection
    elif spec["dur"] is not None:
        record.service_start_s = spec["arrival"]
        record.completion_s = spec["arrival"] + spec["dur"]
    record.degraded = spec["degraded"]
    if spec["slo"] is not None:
        record.slo_class = spec["slo"]


def _build(specs):
    """The same logical records twice: shared store vs standalone."""
    store = RequestStore()
    shared, standalone = [], []
    for i, spec in enumerate(specs):
        prompt = f"p{i}"
        decision = Decision(
            hit=spec["hit"],
            similarity=spec["sim"],
            k_steps=spec["k"],
            retrieved_image=_IMAGE if spec["hit"] else None,
        )
        rejection = None
        if spec["shed"]:
            rejection = SLORejection(
                time_s=spec["arrival"],
                slo_class=spec["slo"] or "strict",
                deadline_s=spec["arrival"] + (spec["deadline"] or 0.0),
                best_estimate_s=spec["arrival"] + 1.0,
            )
        pair = (
            store.new_record(i, prompt, spec["arrival"]),
            RequestRecord(
                request_id=i, prompt=prompt, arrival_s=spec["arrival"]
            ),
        )
        for record in pair:
            _apply(record, spec, decision, rejection)
        shared.append(pair[0])
        standalone.append(pair[1])
    return shared, standalone


def _report(records):
    return ServingReport(
        system="prop",
        trace_name="trace",
        records=list(records),
        energy=EnergyReport(0.0, 0.0, 0.0, 0.0, 0),
        workers=[],
        stats=StatsCollector(),
    )


@given(specs=st.lists(_SPEC, max_size=30))
@_SLOW
def test_report_reductions_match_reference(specs):
    shared, standalone = _build(specs)
    if len(specs) >= 2:
        # The twins genuinely take different paths: one shared store
        # vs per-record private stores (no common columnar view).
        assert columnar_view(shared) is not None
        assert columnar_view(standalone) is None
    # View handles compare by value across stores.
    assert shared == standalone
    fast, reference = _report(shared), _report(standalone)
    assert fast.n_completed == reference.n_completed
    assert fast.latencies().tolist() == reference.latencies().tolist()
    assert (
        fast.completion_times().tolist()
        == reference.completion_times().tolist()
    )
    assert (
        fast.arrival_times().tolist()
        == reference.arrival_times().tolist()
    )


@given(specs=st.lists(_SPEC, max_size=30))
@_SLOW
def test_slo_summary_matches_reference(specs):
    shared, standalone = _build(specs)
    assert summarize_slo(shared) == summarize_slo(standalone)


@given(specs=st.lists(_SPEC, max_size=30))
@_SLOW
def test_gather_matches_record_properties(specs):
    shared, _ = _build(specs)
    view = columnar_view(shared)
    if view is None:
        assert len(shared) <= 1
        return
    store, rows = view
    arrivals = store.gather("arrival_s", rows)
    hits = store.gather("hit", rows)
    k_steps = store.gather("k_steps", rows)
    for i, record in enumerate(shared):
        assert arrivals[i] == record.arrival_s
        assert bool(hits[i]) == record.is_hit
        assert int(k_steps[i]) == (
            record.decision.k_steps if record.decision else 0
        )
