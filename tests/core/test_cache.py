"""Tests for the image and latent caches."""

import numpy as np
import pytest

from repro._rng import rng_for, unit_vector
from repro.core.cache import (
    RETRIEVAL_SECONDS_PER_ENTRY,
    ImageCache,
    LatentCache,
    VectorCache,
)
from repro.diffusion.latent import CachedLatent


def _vec(key, dim=8):
    return unit_vector(rng_for("cache-test", key), dim)


@pytest.fixture
def cache():
    return VectorCache(capacity=4, embed_dim=8)


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            VectorCache(capacity=0, embed_dim=4)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            VectorCache(capacity=2, embed_dim=0)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            VectorCache(capacity=2, embed_dim=4, policy="mru")


class TestInsertRetrieve:
    def test_empty_retrieve(self, cache):
        entry, sim = cache.retrieve(_vec("q"))
        assert entry is None and sim == 0.0

    def test_roundtrip(self, cache):
        vec = _vec("a")
        cache.insert("payload-a", vec, now=1.0)
        entry, sim = cache.retrieve(vec)
        assert entry.payload == "payload-a"
        assert np.isclose(sim, 1.0)

    def test_best_match_wins(self, cache):
        target = _vec("t")
        near = target + 0.1 * _vec("noise")
        cache.insert("far", _vec("far"), now=0.0)
        cache.insert("near", near / np.linalg.norm(near), now=1.0)
        entry, sim = cache.retrieve(target)
        assert entry.payload == "near"
        assert sim > 0.9

    def test_wrong_dim_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.insert("x", np.zeros(9), now=0.0)
        with pytest.raises(ValueError):
            cache.retrieve(np.zeros(9))

    def test_zero_query_returns_none(self, cache):
        cache.insert("x", _vec("x"), now=0.0)
        entry, sim = cache.retrieve(np.zeros(8))
        assert entry is None

    def test_lookups_counted(self, cache):
        cache.retrieve(_vec("q"))
        cache.retrieve(_vec("q"))
        assert cache.lookups == 2


class TestFifoEviction:
    def test_capacity_respected(self, cache):
        for i in range(6):
            cache.insert(f"p{i}", _vec(i), now=float(i))
        assert len(cache) == 4

    def test_oldest_evicted_first(self, cache):
        evicted = []
        for i in range(6):
            out = cache.insert(f"p{i}", _vec(i), now=float(i))
            if out is not None:
                evicted.append(out.payload)
        assert evicted == ["p0", "p1"]

    def test_evicted_not_retrievable(self, cache):
        vec0 = _vec(0)
        for i in range(5):
            cache.insert(f"p{i}", _vec(i), now=float(i))
        entry, sim = cache.retrieve(vec0)
        assert entry is None or entry.payload != "p0"

    def test_entries_ordered_oldest_first(self, cache):
        for i in range(3):
            cache.insert(f"p{i}", _vec(i), now=float(i))
        assert [e.payload for e in cache.entries()] == ["p0", "p1", "p2"]

    def test_eviction_counter(self, cache):
        for i in range(7):
            cache.insert(f"p{i}", _vec(i), now=float(i))
        assert cache.evictions == 3
        assert cache.insertions == 7


class TestUtilityEviction:
    def test_hot_entries_survive(self):
        cache = VectorCache(capacity=3, embed_dim=8, policy="utility")
        vec_hot = _vec("hot")
        cache.insert("hot", vec_hot, now=0.0)
        cache.insert("cold1", _vec("c1"), now=1.0)
        cache.insert("cold2", _vec("c2"), now=2.0)
        entry, _ = cache.retrieve(vec_hot)
        cache.record_hit(entry, now=3.0)
        cache.record_hit(entry, now=4.0)
        evicted = cache.insert("new", _vec("new"), now=5.0)
        assert evicted.payload in ("cold1", "cold2")
        entry, sim = cache.retrieve(vec_hot)
        assert entry.payload == "hot"

    def test_ties_evict_oldest(self):
        cache = VectorCache(capacity=2, embed_dim=8, policy="utility")
        cache.insert("a", _vec("a"), now=0.0)
        cache.insert("b", _vec("b"), now=1.0)
        evicted = cache.insert("c", _vec("c"), now=2.0)
        assert evicted.payload == "a"


class TestLatencyAndStorage:
    def test_retrieval_latency_scales_with_size(self, cache):
        assert cache.retrieval_latency_s() == 0.0
        cache.insert("a", _vec("a"), now=0.0)
        assert np.isclose(
            cache.retrieval_latency_s(), RETRIEVAL_SECONDS_PER_ENTRY
        )

    def test_paper_latency_anchor(self):
        # §5.2: 0.05 s at 100k entries.
        assert np.isclose(RETRIEVAL_SECONDS_PER_ENTRY * 100_000, 0.05)

    def test_storage_bytes(self, sample_images):
        cache = ImageCache(capacity=8, embed_dim=8)
        for i, img in enumerate(sample_images[:3]):
            cache.insert(img, _vec(i), now=float(i))
        assert cache.storage_bytes() == sum(
            img.size_bytes for img in sample_images[:3]
        )

    def test_latent_cache_heavier_than_image_cache(self, sample_images):
        img_cache = ImageCache(capacity=4, embed_dim=8)
        lat_cache = LatentCache(capacity=4, embed_dim=8)
        img = sample_images[0]
        latent = CachedLatent(
            latent_id="l",
            prompt_id=img.prompt_id,
            model_name=img.model_name,
            content=img.content,
        )
        img_cache.insert(img, _vec("i"), now=0.0)
        lat_cache.insert(latent, _vec("l"), now=0.0)
        assert lat_cache.storage_bytes() > img_cache.storage_bytes()


class TestLatentCacheModelFilter:
    def test_other_models_cannot_use_latents(self):
        cache = LatentCache(capacity=2, embed_dim=8)
        latent = CachedLatent(
            latent_id="l",
            prompt_id="p",
            model_name="sd3.5-large",
            content=np.zeros(4),
        )
        vec = _vec("l")
        cache.insert(latent, vec, now=0.0)
        entry, sim = cache.retrieve_for_model(vec, "sd3.5-large")
        assert entry is not None
        entry, sim = cache.retrieve_for_model(vec, "sdxl")
        assert entry is None and sim == 0.0


class TestHitRecording:
    def test_record_hit_updates_entry(self, cache):
        vec = _vec("h")
        cache.insert("h", vec, now=0.0)
        entry, _ = cache.retrieve(vec)
        assert entry.hits == 0
        cache.record_hit(entry, now=5.0)
        assert entry.hits == 1
        assert entry.last_hit_at == 5.0
