"""Cluster-wide crash recovery: fleet snapshots, suffix replay,
cache migration on kill, and correlated/cascading failure schedules."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cluster_router import (
    ClusterSnapshot,
    MIGRATION_POLICY_REGISTRY,
    modm_cluster,
)
from repro.core.config import (
    ClusterConfig,
    ClusterRoutingConfig,
    FailureEvent,
    FailurePlan,
    JournalConfig,
    MIGRATION_POLICIES,
    MoDMConfig,
    cascade,
    correlated_group,
)
from repro.core.journal import JournalReplayer
from repro.workloads import DiffusionDBConfig, diffusiondb_trace

_SLOW = settings(
    max_examples=8,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


def _modm_config(n_workers=8, journal=True):
    return MoDMConfig(
        cluster=ClusterConfig(gpu_name="MI210", n_workers=n_workers),
        cache_capacity=200,
        small_models=("sdxl",),
        journal=(
            JournalConfig(snapshot_period_s=40.0) if journal else None
        ),
    )


def _trace(space, n=100, seed="cluster-recovery"):
    return diffusiondb_trace(
        space,
        DiffusionDBConfig(
            n_requests=n, request_rate_per_min=40.0, seed=seed
        ),
    )


def _payload(system, report):
    comp = system.request_store.column("completion_s")
    return {
        "n_completed": report.n_completed,
        "n_lost": report.n_lost,
        "hit_rate": report.hit_rate,
        "completion_sha": hashlib.sha256(comp.tobytes()).hexdigest(),
        "routed": tuple(report.routed),
        "cluster_journal": system.journal.digest(),
        "replica_journals": tuple(
            r._journal.digest() if r._journal is not None else ""
            for r in system.replicas
        ),
    }


# ----------------------------------------------------------------------
# Failure-schedule helpers (config level)
# ----------------------------------------------------------------------
class TestFailureSchedules:
    def test_correlated_group_same_instant(self):
        events = correlated_group(100.0, (1, 3), action="kill")
        assert [e.replica for e in events] == [1, 3]
        assert all(e.time_s == 100.0 for e in events)
        assert all(e.action == "kill" for e in events)

    def test_cascade_p1_staggers_by_delay(self):
        events = cascade(60.0, (0, 1, 2), delay_s=30.0, p=1.0)
        assert [(e.replica, e.time_s) for e in events] == [
            (0, 60.0),
            (1, 90.0),
            (2, 120.0),
        ]

    def test_cascade_p0_stops_after_the_first(self):
        events = cascade(60.0, (0, 1, 2), delay_s=30.0, p=0.0)
        assert [(e.replica, e.time_s) for e in events] == [(0, 60.0)]

    def test_cascade_is_seed_deterministic(self):
        a = cascade(60.0, (0, 1, 2, 3), delay_s=10.0, p=0.5, seed="x")
        b = cascade(60.0, (0, 1, 2, 3), delay_s=10.0, p=0.5, seed="x")
        assert a == b

    def test_cascade_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="p must be"):
            cascade(0.0, (0, 1), delay_s=1.0, p=1.5)

    def test_fate_group_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            FailurePlan(fate_groups=((1,),))
        with pytest.raises(ValueError, match="duplicate"):
            FailurePlan(fate_groups=((1, 1),))
        with pytest.raises(ValueError, match="n_replicas"):
            ClusterRoutingConfig(
                n_replicas=2,
                failures=FailurePlan(
                    events=(
                        FailureEvent(
                            time_s=1.0, replica=0, action="kill"
                        ),
                    ),
                    fate_groups=((0, 5),),
                ),
            )


# ----------------------------------------------------------------------
# Migration policies (pure functions)
# ----------------------------------------------------------------------
class _StubCache:
    def __init__(self, centroid):
        self._centroid = np.asarray(centroid, dtype=np.float64)

    def centroid(self):
        return self._centroid


class _StubReplica:
    def __init__(self, centroid):
        self.cache = _StubCache(centroid)


def _entry(embedding, entry_id=0):
    return (entry_id, f"payload-{entry_id}", np.asarray(embedding), 0.0)


class TestMigrationPolicies:
    def test_registry_matches_config_names(self):
        assert set(MIGRATION_POLICY_REGISTRY) == set(MIGRATION_POLICIES)

    def test_none_drops_everything(self):
        fn = MIGRATION_POLICY_REGISTRY["none"]
        assert fn([_entry([1.0, 0.0])], [0, 1], []) == []

    def test_round_robin_deals_in_turn(self):
        fn = MIGRATION_POLICY_REGISTRY["round_robin"]
        entries = [_entry([1.0, 0.0], i) for i in range(5)]
        assert fn(entries, [0, 2], []) == [0, 2, 0, 2, 0]

    def test_nearest_centroid_scores_against_survivors(self):
        fn = MIGRATION_POLICY_REGISTRY["nearest_centroid"]
        replicas = [
            _StubReplica([1.0, 0.0]),
            _StubReplica([0.0, 0.0]),  # dead, not a survivor
            _StubReplica([0.0, 1.0]),
        ]
        entries = [
            _entry([0.9, 0.1], 0),  # nearest replica 0
            _entry([0.1, 0.9], 1),  # nearest replica 2
        ]
        assert fn(entries, [0, 2], replicas) == [0, 2]

    def test_nearest_centroid_ties_keep_lowest_survivor(self):
        fn = MIGRATION_POLICY_REGISTRY["nearest_centroid"]
        same = _StubReplica([0.5, 0.5])
        other = _StubReplica([0.5, 0.5])
        assert fn(
            [_entry([1.0, 1.0])], [1, 3], [None, same, None, other]
        ) == [1]

    def test_nearest_centroid_zero_embedding_falls_back(self):
        fn = MIGRATION_POLICY_REGISTRY["nearest_centroid"]
        replicas = [_StubReplica([1.0, 0.0]), _StubReplica([0.0, 1.0])]
        entries = [_entry([0.0, 0.0], i) for i in range(3)]
        # Round-robin by entry position over the survivor list.
        assert fn(entries, [0, 1], replicas) == [0, 1, 0]


# ----------------------------------------------------------------------
# Migration + fate sharing in a live fleet
# ----------------------------------------------------------------------
class TestKillMigration:
    def _run(self, space, trace, migration, fate_groups=()):
        span = trace.requests[-1].arrival_s
        routing = ClusterRoutingConfig(
            n_replicas=4,
            policy="cache_affinity",
            migration_policy=migration,
            failures=FailurePlan(
                events=(
                    FailureEvent(
                        time_s=0.5 * span, replica=1, action="kill"
                    ),
                ),
                recovery_window_s=60.0,
                fate_groups=fate_groups,
            ),
        )
        system = modm_cluster(space, _modm_config(), routing)
        report = system.run(trace)
        return system, report

    def test_survivors_adopt_the_dead_cache(self, space):
        trace = _trace(space)
        system, report = self._run(space, trace, "nearest_centroid")
        record = report.failures[0]
        assert record.n_migrated > 0
        kinds = system.journal.kind_counts()
        assert kinds["migrate"] >= 1
        assert report.n_lost == 0
        # MIGRATE rows conserve the migrated count and never target the
        # dead replica.
        entries = system.journal.entries()
        migrate_rows = [row for row in entries if row[1] == 13]
        assert sum(row[3] for row in migrate_rows) == record.n_migrated
        assert all(row[2] != 1 for row in migrate_rows)
        assert all(row[4] == 1.0 for row in migrate_rows)

    def test_migration_off_is_journal_identical_to_seed_path(
        self, space
    ):
        trace = _trace(space)
        system_none, report_none = self._run(space, trace, "none")
        assert report_none.failures[0].n_migrated == 0
        assert "migrate" not in system_none.journal.kind_counts()

    def test_fate_group_kills_the_whole_rack(self, space):
        trace = _trace(space)
        system, report = self._run(
            space, trace, "nearest_centroid", fate_groups=((1, 2),)
        )
        assert [rec.replica for rec in report.failures] == [1, 2]
        assert system.journal.kind_counts()["kill"] == 2
        assert report.n_lost == 0
        # Migration happens after the whole group halts, so nothing
        # lands on a fate-shared sibling.
        migrate_rows = [
            row for row in system.journal.entries() if row[1] == 13
        ]
        assert migrate_rows
        assert all(row[2] not in (1, 2) for row in migrate_rows)


# ----------------------------------------------------------------------
# Fleet snapshots + suffix replay
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def straight_fleet(space):
    """One journaled, snapshotting, failure-injecting straight run."""
    trace = _trace(space)
    span = trace.requests[-1].arrival_s
    routing = ClusterRoutingConfig(
        n_replicas=2,
        policy="round_robin",
        journal=True,
        snapshot_period_s=30.0,
        migration_policy="round_robin",
        failures=FailurePlan(
            events=(
                FailureEvent(
                    time_s=0.55 * span, replica=1, action="kill"
                ),
                FailureEvent(
                    time_s=0.75 * span, replica=1, action="restart"
                ),
            ),
            recovery_window_s=60.0,
        ),
    )

    def build():
        return modm_cluster(space, _modm_config(), routing)

    system = build()
    report = system.run(trace)
    assert len(system.snapshots) >= 3
    return {
        "build": build,
        "trace": trace,
        "system": system,
        "payload": _payload(system, report),
        "reference": system.journal.entries(),
        "kill_t": 0.55 * span,
    }


class TestClusterSnapshot:
    def test_restore_resume_is_bit_identical(self, straight_fleet):
        snapshots = straight_fleet["system"].snapshots
        snap = snapshots[len(snapshots) // 2]
        resumed = straight_fleet["build"]()
        snap.restore(resumed)
        report = resumed.resume(straight_fleet["trace"])
        assert _payload(resumed, report) == straight_fleet["payload"]

    def test_fingerprint_rejects_config_mismatch(
        self, space, straight_fleet
    ):
        snap = straight_fleet["system"].snapshots[0]
        other = modm_cluster(
            space,
            _modm_config(),
            ClusterRoutingConfig(n_replicas=2, policy="round_robin"),
        )
        with pytest.raises(ValueError, match="configuration mismatch"):
            snap.restore(other)

    def test_snapshot_requires_journal(self, space):
        with pytest.raises(ValueError, match="snapshot_period_s"):
            ClusterRoutingConfig(n_replicas=2, snapshot_period_s=-1.0)
        # snapshot_period_s without journaling never captures: the off
        # path stays off.
        system = modm_cluster(
            space,
            _modm_config(),
            ClusterRoutingConfig(n_replicas=2),
        )
        system.run(_trace(space, n=10, seed="off-path"))
        assert system.journal is None
        assert system.snapshots == []

    def test_journal_flag_without_failures_records_the_run(self, space):
        system = modm_cluster(
            space,
            _modm_config(),
            ClusterRoutingConfig(n_replicas=2, journal=True),
        )
        report = system.run(_trace(space, n=20, seed="journal-only"))
        kinds = system.journal.kind_counts()
        assert kinds["arrival"] > 0
        assert kinds["route"] == kinds["arrival"]
        assert report.n_completed == 20

    @_SLOW
    @given(data=st.data())
    def test_any_snapshot_restores_and_replays_identically(
        self, straight_fleet, data
    ):
        """Satellite property: an arbitrary snapshot tick, restored and
        driven by either the trace timeline or the journal suffix,
        finishes bit-for-bit equal to the straight run — including
        snapshots taken before the kill, where the replayed suffix
        re-executes the failure, migration, and restart."""
        snapshots = straight_fleet["system"].snapshots
        index = data.draw(
            st.integers(min_value=0, max_value=len(snapshots) - 1)
        )
        suffix = data.draw(st.booleans())
        snap = snapshots[index]
        resumed = straight_fleet["build"]()
        if suffix:
            snap.restore(resumed, install_timeline=False)
            replayer = JournalReplayer(
                resumed, straight_fleet["reference"]
            )
            report = replayer.replay(
                trace_name=straight_fleet["trace"].name
            )
            replayer.verify()
        else:
            snap.restore(resumed)
            report = resumed.resume(straight_fleet["trace"])
        assert _payload(resumed, report) == straight_fleet["payload"]

    def test_pre_kill_snapshot_replays_the_failure(
        self, straight_fleet
    ):
        """Explicit mid-replay kill: restore strictly before the kill
        instant and replay from the journal suffix — the kill, cache
        migration, orphan re-route, and restart all re-fire."""
        snapshots = straight_fleet["system"].snapshots
        pre_kill = [
            s for s in snapshots if s.time_s < straight_fleet["kill_t"]
        ]
        assert pre_kill, "no snapshot precedes the kill"
        snap = pre_kill[-1]
        resumed = straight_fleet["build"]()
        snap.restore(resumed, install_timeline=False)
        assert not any(rec.replica == 1 for rec in resumed._failures)
        replayer = JournalReplayer(
            resumed, straight_fleet["reference"]
        )
        report = replayer.replay(
            trace_name=straight_fleet["trace"].name
        )
        replayer.verify()
        assert _payload(resumed, report) == straight_fleet["payload"]
        assert any(rec.n_migrated > 0 for rec in resumed._failures)
