"""Cluster router, autoscaler, and multi-replica serving edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.stats import StatsCollector
from repro.core.cluster_router import (
    CacheAffinityRouting,
    LeastLoadedRouting,
    ReplicaAutoscaler,
    ROUTING_POLICY_REGISTRY,
    RoundRobinRouting,
    TransferEvent,
    modm_cluster,
    split_evenly,
)
from repro.core.config import (
    ClusterConfig,
    ClusterRoutingConfig,
    MoDMConfig,
    ROUTING_POLICIES,
)
from repro.core.serving import MoDMSystem
from repro.workloads import DiffusionDBConfig, diffusiondb_trace


def _modm_config(n_workers=4, cache_capacity=200):
    return MoDMConfig(
        cluster=ClusterConfig(gpu_name="MI210", n_workers=n_workers),
        cache_capacity=cache_capacity,
        small_models=("sdxl",),
    )


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestRoutingConfig:
    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError, match="n_replicas"):
            ClusterRoutingConfig(n_replicas=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="routing policy"):
            ClusterRoutingConfig(policy="hash-ring")

    def test_imbalance_cap_below_one_rejected(self):
        with pytest.raises(ValueError, match="imbalance_cap"):
            ClusterRoutingConfig(imbalance_cap=0.5)

    def test_registry_matches_config_names(self):
        assert set(ROUTING_POLICY_REGISTRY) == set(ROUTING_POLICIES)

    def test_more_replicas_than_workers_rejected(self, space):
        with pytest.raises(ValueError, match="workers"):
            modm_cluster(
                space,
                _modm_config(n_workers=2),
                ClusterRoutingConfig(n_replicas=3),
            )

    def test_split_evenly_conserves_and_orders(self):
        assert split_evenly(10, 4) == [3, 3, 2, 2]
        assert split_evenly(4, 4) == [1, 1, 1, 1]
        assert sum(split_evenly(17, 5)) == 17


# ----------------------------------------------------------------------
# Policy unit behavior
# ----------------------------------------------------------------------
class TestPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinRouting()
        picks = [policy.route(None, [0, 0, 0], [None] * 3) for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]
        policy.reset()
        assert policy.route(None, [0, 0, 0], [None] * 3) == 0

    def test_least_loaded_ties_break_low_index(self):
        policy = LeastLoadedRouting()
        assert policy.route(None, [3, 1, 1], [None] * 3) == 1
        assert policy.route(None, [2, 2, 2], [None] * 3) == 0

    def test_affinity_picks_nearest_centroid(self):
        policy = CacheAffinityRouting(imbalance_cap=2.0, spill_slack=8)
        query = np.array([1.0, 0.0])
        centroids = [np.array([0.0, 1.0]), np.array([1.0, 0.1])]
        assert policy.route(query, [0, 0], centroids) == 1

    def test_affinity_equidistant_ties_break_low_index(self):
        policy = CacheAffinityRouting()
        query = np.array([1.0, 1.0])
        same = np.array([0.5, 0.5])
        # Bit-identical centroids at equal load: the lower index wins,
        # every time.
        picks = {
            policy.route(query, [0, 0], [same, same.copy()])
            for _ in range(5)
        }
        assert picks == {0}

    def test_affinity_spills_over_imbalance_cap(self):
        policy = CacheAffinityRouting(imbalance_cap=1.5, spill_slack=2)
        query = np.array([1.0, 0.0])
        centroids = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        # Nearest replica 0 is fine while within cap...
        assert policy.route(query, [2, 0], centroids) == 0
        # ...but spills to least-loaded once past cap * min + slack.
        assert policy.route(query, [3, 0], centroids) == 1

    def test_affinity_without_centroids_falls_back_least_loaded(self):
        policy = CacheAffinityRouting()
        assert policy.route(
            np.array([1.0, 0.0]), [5, 2], [None, None]
        ) == 1
        # Zero query embedding degrades the same way.
        assert policy.route(
            np.zeros(2), [5, 2], [np.ones(2), np.ones(2)]
        ) == 1


class TestRouterBatching:
    def test_least_loaded_spreads_same_tick_burst(self, space):
        system = modm_cluster(
            space,
            _modm_config(),
            ClusterRoutingConfig(n_replicas=4, policy="least_loaded"),
        )
        trace = diffusiondb_trace(
            space, DiffusionDBConfig(n_requests=8, seed="burst")
        )
        records = []
        for request in trace:
            from repro.core.request import RequestRecord

            records.append(
                RequestRecord(
                    request_id=request.request_id,
                    prompt=request.prompt,
                    arrival_s=0.0,
                )
            )
        indices = system.router.route_batch(records, system.replicas)
        # In-batch load accounting spreads the burst evenly instead of
        # dog-piling replica 0.
        assert sorted(indices.count(i) for i in range(4)) == [2, 2, 2, 2]


# ----------------------------------------------------------------------
# Autoscaler
# ----------------------------------------------------------------------
class TestReplicaAutoscaler:
    def _autoscaler(self, counts=(4, 4), **overrides):
        config = ClusterRoutingConfig(
            n_replicas=len(counts), autoscale=True, **overrides
        )
        return ReplicaAutoscaler(config, list(counts))

    def test_min_workers_floor_exceeding_fleet_rejected(self):
        config = ClusterRoutingConfig(
            n_replicas=3, autoscale=True, min_workers_per_replica=2
        )
        with pytest.raises(ValueError, match="min_workers"):
            ReplicaAutoscaler(config, [1, 1, 1])

    def test_targets_conserve_fleet_and_respect_floor(self):
        scaler = self._autoscaler((4, 4))
        for demands in ([10.0, 0.0], [0.0, 10.0], [1.0, 1.0]):
            targets = scaler.targets(demands)
            assert sum(targets) == 8
            assert all(t >= 1 for t in targets)

    def test_zero_demand_holds_split(self):
        scaler = self._autoscaler((6, 2))
        assert scaler.targets([0.0, 0.0]) == [6, 2]

    def test_step_load_change_converges_without_oscillation(self):
        """PID anti-thrash: a step to a 3:1 demand ratio must converge
        monotonically to the 6:2 split and then stay there."""
        scaler = self._autoscaler((4, 4))
        history = [
            scaler.targets([3.0, 1.0]) for _ in range(25)
        ]
        firsts = [t[0] for t in history]
        # Converged to the demand-proportional split...
        assert history[-1] == [6, 2]
        # ...approaching monotonically (never overshooting then backing
        # off — that would be a thrashing worker transfer).
        assert all(b >= a for a, b in zip(firsts, firsts[1:]))
        assert max(firsts) == 6
        # Once reached, the target never leaves.
        reached = firsts.index(6)
        assert all(f == 6 for f in firsts[reached:])

    def test_damping_spreads_step_over_periods(self):
        """The first period after a step moves only part of the way."""
        scaler = self._autoscaler((4, 4))
        first = scaler.targets([3.0, 1.0])
        assert 4 <= first[0] < 6

    def test_demand_tie_integerization_prefers_low_index(self):
        scaler = self._autoscaler((3, 3, 3))
        for _ in range(40):
            targets = scaler.targets([1.0, 1.0, 1.0])
        assert targets == [3, 3, 3]
        # An odd fleet puts the spare worker on the lowest index.
        odd = self._autoscaler((3, 2, 2))
        for _ in range(40):
            targets = odd.targets([1.0, 1.0, 1.0])
        assert targets == [3, 2, 2]


# ----------------------------------------------------------------------
# Cluster serving integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster_trace(space):
    return diffusiondb_trace(
        space, DiffusionDBConfig(n_requests=160, seed="cluster-edge")
    )


class TestClusterServing:
    def _run(self, space, trace, routing, n_workers=4):
        system = modm_cluster(
            space, _modm_config(n_workers=n_workers), routing
        )
        system.warm_cache([r.prompt for r in trace.requests[:40]])
        return system, system.run(trace.slice(40).rebase())

    @pytest.mark.parametrize("policy", sorted(ROUTING_POLICIES))
    def test_every_request_reaches_one_replica(
        self, space, cluster_trace, policy
    ):
        system, report = self._run(
            space,
            cluster_trace,
            ClusterRoutingConfig(n_replicas=2, policy=policy),
        )
        assert report.n_completed == len(report.fleet.records)
        assert sum(report.routed) == len(report.fleet.records)
        assert all(
            r.replica_id in (0, 1) for r in report.fleet.records
        )
        # Per-replica reports partition the fleet.
        assert sum(
            len(r.completed()) for r in report.replicas
        ) == report.n_completed

    def test_fleet_hit_rate_merges_replica_stats(
        self, space, cluster_trace
    ):
        _, report = self._run(
            space,
            cluster_trace,
            ClusterRoutingConfig(n_replicas=2, policy="round_robin"),
        )
        merged = StatsCollector.merged(
            [r.stats for r in report.replicas]
        )
        assert report.fleet.hit_rate == merged.overall_hit_rate

    def test_worker_ids_fleet_unique(self, space, cluster_trace):
        system, report = self._run(
            space,
            cluster_trace,
            ClusterRoutingConfig(n_replicas=2, policy="least_loaded"),
        )
        ids = [w.worker_id for w in report.fleet.workers]
        assert len(ids) == len(set(ids)) == 4

    def test_autoscaler_transfers_are_recorded_and_conserving(
        self, space, cluster_trace
    ):
        system, report = self._run(
            space,
            cluster_trace,
            ClusterRoutingConfig(
                n_replicas=2,
                policy="least_loaded",
                autoscale=True,
                autoscale_period_s=60.0,
            ),
        )
        total = sum(len(r.workers) for r in system.replicas)
        assert total == 4
        assert all(
            isinstance(t, TransferEvent) for t in report.transfers
        )
        assert all(
            len(r.workers) >= 1 for r in system.replicas
        )

    def test_single_replica_autoscale_is_noop(self, space):
        system = modm_cluster(
            space,
            _modm_config(),
            ClusterRoutingConfig(n_replicas=1, autoscale=True),
        )
        assert system._autoscaler is None


class TestWorkerTransferMechanics:
    def test_release_busy_worker_rejected(self, space):
        system = MoDMSystem(space, _modm_config())
        system._reset_runtime()
        worker_id = system.workers[0].worker_id
        system._idle_workers.discard(worker_id)  # simulate busy
        with pytest.raises(ValueError, match="not idle"):
            system.release_worker(worker_id)

    def test_release_then_adopt_moves_capacity(self, space):
        donor = MoDMSystem(space, _modm_config())
        recipient = MoDMSystem(space, _modm_config())
        donor._reset_runtime()
        recipient._reset_runtime()
        for worker in recipient.workers:
            worker.worker_id += 10
        recipient._workers_by_id = {
            w.worker_id: w for w in recipient.workers
        }
        recipient._idle_workers = set(recipient._workers_by_id)
        moved = donor.release_worker(3)
        assert len(donor.workers) == 3
        assert 3 not in donor._idle_workers
        recipient.adopt_worker(moved, now=0.0)
        assert len(recipient.workers) == 5
        assert 3 in recipient._idle_workers
        # The monitor followed the pool resize on both sides.
        assert donor.monitor.n_workers == 3
        assert recipient.monitor.n_workers == 5
        with pytest.raises(ValueError, match="already present"):
            recipient.adopt_worker(moved, now=0.0)


# ----------------------------------------------------------------------
# Failure injection (deterministic kill/restart)
# ----------------------------------------------------------------------
class TestFailureInjection:
    @staticmethod
    def _run_with_failures(space, trace, events, journal=None):
        from repro.core.config import FailurePlan, JournalConfig

        if journal is None:
            journal = JournalConfig(snapshot_period_s=30.0)
        config = MoDMConfig(
            cluster=ClusterConfig(gpu_name="MI210", n_workers=4),
            cache_capacity=200,
            small_models=("sdxl",),
            journal=journal,
        )
        system = modm_cluster(
            space,
            config,
            ClusterRoutingConfig(
                n_replicas=2,
                policy="cache_affinity",
                failures=FailurePlan(
                    events=events, recovery_window_s=60.0
                ),
            ),
        )
        report = system.run(trace)
        return system, report

    def test_kill_and_restart_conserves_requests(
        self, space, cluster_trace
    ):
        from repro.core.config import FailureEvent

        span = cluster_trace.requests[-1].arrival_s
        kill_t, restart_t = 0.4 * span, 0.7 * span
        system, report = self._run_with_failures(
            space,
            cluster_trace,
            (
                FailureEvent(time_s=kill_t, replica=1, action="kill"),
                FailureEvent(
                    time_s=restart_t, replica=1, action="restart"
                ),
            ),
        )
        assert report.n_lost == 0
        # Terminal exactly once: the completion counter agrees with the
        # number of rows carrying a completion time, and nothing is both
        # shed and completed.
        comp = system.request_store.column("completion_s")
        shed = system.request_store.column("shed")
        completed_rows = int(np.count_nonzero(comp == comp))
        assert report.fleet.n_completed == completed_rows
        assert not np.any(shed & (comp == comp))
        assert completed_rows + int(np.count_nonzero(shed)) == len(
            cluster_trace
        )
        # The failure record tells the whole story.
        assert len(report.failures) == 1
        record = report.failures[0]
        assert record.replica == 1
        assert record.time_s == kill_t
        assert record.restart_time_s == restart_t
        assert report.n_rerouted == record.n_rerouted
        assert not system.replicas[1]._dead

    def test_kill_without_restart_stays_dead(
        self, space, cluster_trace
    ):
        from repro.core.config import FailureEvent

        span = cluster_trace.requests[-1].arrival_s
        kill_t = 0.4 * span
        system, report = self._run_with_failures(
            space,
            cluster_trace,
            (FailureEvent(time_s=kill_t, replica=0, action="kill"),),
        )
        assert system.replicas[0]._dead
        assert report.n_lost == 0
        assert report.failures[0].restart_time_s is None
        # Nothing completes on a dead replica after the kill.
        comp = system.request_store.column("completion_s")
        replica_col = system.request_store.column("replica_id")
        on_dead = (replica_col == 0) & (comp == comp)
        assert not np.any(comp[on_dead] > kill_t)

    def test_warm_restore_beats_cold_rejoin(self, space, cluster_trace):
        from repro.core.config import FailureEvent

        span = cluster_trace.requests[-1].arrival_s
        kill_t, restart_t = 0.4 * span, 0.55 * span

        def events(warm):
            return (
                FailureEvent(time_s=kill_t, replica=1, action="kill"),
                FailureEvent(
                    time_s=restart_t,
                    replica=1,
                    action="restart",
                    warm=warm,
                ),
            )

        _, warm_report = self._run_with_failures(
            space, cluster_trace, events(True)
        )
        cold_system, cold_report = self._run_with_failures(
            space, cluster_trace, events(False)
        )
        warm_rec = warm_report.failures[0]
        cold_rec = cold_report.failures[0]
        # Identical until the restart fires...
        assert warm_rec.hit_rate_before == cold_rec.hit_rate_before
        assert warm_rec.n_rerouted == cold_rec.n_rerouted
        # ...then the warm replica resumes with its snapshot cache while
        # the cold one rejoins empty, so the warm fleet never loses to
        # the cold one on hit rate.
        assert warm_rec.warm and not cold_rec.warm
        assert warm_report.fleet.hit_rate >= cold_report.fleet.hit_rate

    def test_failures_are_journaled(self, space, cluster_trace):
        from repro.core.config import FailureEvent

        span = cluster_trace.requests[-1].arrival_s
        system, _ = self._run_with_failures(
            space,
            cluster_trace,
            (
                FailureEvent(
                    time_s=0.4 * span, replica=1, action="kill"
                ),
                FailureEvent(
                    time_s=0.7 * span, replica=1, action="restart"
                ),
            ),
        )
        assert system.journal is not None
        kinds = system.journal.kind_counts()
        assert kinds["kill"] == 1
        assert kinds["restart"] == 1
        assert kinds["route"] > 0

    def test_double_kill_is_a_noop(self, space, cluster_trace):
        from repro.core.config import FailureEvent

        span = cluster_trace.requests[-1].arrival_s
        _, report = self._run_with_failures(
            space,
            cluster_trace,
            (
                FailureEvent(
                    time_s=0.4 * span, replica=1, action="kill"
                ),
                FailureEvent(
                    time_s=0.45 * span, replica=1, action="kill"
                ),
            ),
        )
        assert len(report.failures) == 1
        assert report.n_lost == 0
