"""Event journal, state snapshots, and replay determinism."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro._rng import rng_for, unit_vector
from repro.core.cache import IVFParams, VectorCache
from repro.core.config import (
    ClusterConfig,
    ClusterRoutingConfig,
    JournalConfig,
    MoDMConfig,
)
from repro.core.journal import (
    ARRIVAL,
    COMPLETE,
    DECISION,
    KIND_NAMES,
    EventJournal,
    JournalKind,
    JournalReplayer,
    SnapCounter,
    Snapshot,
)
from repro.core.cluster_router import modm_cluster
from repro.core.serving import MoDMSystem
from repro.workloads import DiffusionDBConfig, diffusiondb_trace


def _config(journal=None, seed="journal-tests", n_workers=4):
    return MoDMConfig(
        cluster=ClusterConfig(gpu_name="MI210", n_workers=n_workers),
        cache_capacity=200,
        small_models=("sdxl",),
        seed=seed,
        journal=journal,
    )


def _trace(space, n=100, rate=40.0, seed="journal-trace"):
    return diffusiondb_trace(
        space,
        DiffusionDBConfig(
            n_requests=n, request_rate_per_min=rate, seed=seed
        ),
    )


def _run_payload(report):
    """Everything a bit-identical pair of runs must agree on."""
    times = np.sort(report.completion_times())
    decisions = [
        (r.request_id, r.decision.hit, r.decision.k_steps)
        for r in report.records
        if r.decision is not None
    ]
    return (
        report.n_completed,
        report.hit_rate,
        hashlib.sha256(times.tobytes()).hexdigest(),
        decisions,
    )


# ----------------------------------------------------------------------
# SnapCounter
# ----------------------------------------------------------------------
class TestSnapCounter:
    def test_matches_itertools_count(self):
        counter = SnapCounter()
        assert [next(counter) for _ in range(4)] == [0, 1, 2, 3]
        assert counter.value == 4

    def test_position_restores_exactly(self):
        counter = SnapCounter()
        for _ in range(7):
            next(counter)
        resumed = SnapCounter(counter.value)
        assert next(resumed) == next(counter)

    def test_iter_protocol(self):
        counter = SnapCounter(5)
        assert iter(counter) is counter
        assert list(zip(range(3), counter)) == [(0, 5), (1, 6), (2, 7)]


# ----------------------------------------------------------------------
# EventJournal
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_append_and_entries_round_trip(self):
        journal = EventJournal()
        rows = [
            (0.5, ARRIVAL, 0, 3, 0.0),
            (1.0, DECISION, 1, 25, 0.93),
            (2.5, COMPLETE, 1, 0, 0.0),
        ]
        for time, kind, a, b, x in rows:
            journal.append(time, kind, a=a, b=b, x=x)
        assert len(journal) == 3
        assert journal.entries() == rows
        assert journal.entries(start=2) == rows[2:]

    def test_from_entries_preserves_digest(self):
        journal = EventJournal()
        for i in range(20):
            journal.append(float(i), i % len(KIND_NAMES), a=i, x=0.5 * i)
        clone = EventJournal.from_entries(journal.entries())
        assert clone.digest() == journal.digest()
        assert len(clone) == len(journal)

    def test_digest_tracks_content(self):
        one, two = EventJournal(), EventJournal()
        one.append(1.0, ARRIVAL, a=1)
        two.append(1.0, ARRIVAL, a=1)
        assert one.digest() == two.digest()
        two.append(2.0, COMPLETE, a=1)
        assert one.digest() != two.digest()

    def test_growth_beyond_initial_capacity(self):
        journal = EventJournal(initial=8)
        for i in range(100):
            journal.append(float(i), COMPLETE, a=i)
        assert len(journal) == 100
        assert journal.entries()[99] == (99.0, COMPLETE, 99, 0, 0.0)

    def test_kind_counts_and_payload(self):
        journal = EventJournal()
        journal.append(0.0, ARRIVAL)
        journal.append(1.0, DECISION)
        journal.append(1.5, DECISION)
        counts = journal.kind_counts()
        assert counts == {"arrival": 1, "decision": 2}
        payload = journal.payload()
        assert payload["n_events"] == 3
        assert payload["digest"] == journal.digest()
        assert payload["kinds"] == counts


# ----------------------------------------------------------------------
# Journaling is behavior-neutral
# ----------------------------------------------------------------------
class TestJournalKind:
    # The kind column is int8 and every committed golden digest covers
    # it, so these values are wire format: frozen forever.
    PINNED = {
        "ARRIVAL": 0,
        "DECISION": 1,
        "DISPATCH": 2,
        "COMPLETE": 3,
        "SHED": 4,
        "ALLOC": 5,
        "SNAPSHOT": 6,
        "ROUTE": 7,
        "KILL": 8,
        "RESTART": 9,
        "TRANSFER": 10,
        "PROMOTE": 11,
        "DEMOTE": 12,
        "MIGRATE": 13,
    }

    def test_values_are_pinned(self):
        assert {k.name: int(k) for k in JournalKind} == self.PINNED

    def test_module_aliases_are_the_members(self):
        import repro.core.journal as journal

        for name, value in self.PINNED.items():
            alias = getattr(journal, name)
            assert alias is JournalKind[name]
            assert alias == value

    def test_kind_names_mirror_the_enum(self):
        assert KIND_NAMES == tuple(
            k.name.lower() for k in JournalKind
        )
        assert len(KIND_NAMES) == len(self.PINNED)

    def test_int8_round_trip(self):
        # The journal stores kinds in an int8 column; every member must
        # survive the narrowing and come back as the same member.
        for kind in JournalKind:
            assert JournalKind(int(np.int8(kind))) is kind

    def test_members_are_ints_for_journal_append(self):
        journal = EventJournal()
        journal.append(1.0, JournalKind.MIGRATE, a=2, b=30, x=1.0)
        assert journal.entries() == [(1.0, 13, 2, 30, 1.0)]
        assert journal.kind_counts() == {"migrate": 1}


class TestJournalNeutrality:
    def test_journal_off_by_default(self, space):
        system = MoDMSystem(space, _config())
        assert system._journal is None
        system.run(_trace(space, n=20))
        assert system._journal is None
        assert system.snapshots == []

    def test_journal_on_is_bit_identical(self, space):
        trace = _trace(space)
        plain = MoDMSystem(space, _config())
        journaled = MoDMSystem(
            space, _config(journal=JournalConfig(snapshot_period_s=60.0))
        )
        plain_report = plain.run(trace)
        journaled_report = journaled.run(trace)
        assert _run_payload(plain_report) == _run_payload(
            journaled_report
        )
        # ... and the journaled run actually recorded its path.
        counts = journaled._journal.kind_counts()
        assert counts["arrival"] > 0
        assert counts["decision"] == len(trace)
        assert counts["complete"] == journaled_report.n_completed
        assert counts["snapshot"] == len(journaled.snapshots)
        assert journaled.snapshots


# ----------------------------------------------------------------------
# Snapshot capture / restore / resume
# ----------------------------------------------------------------------
class TestSnapshotRestore:
    def test_restore_and_resume_is_bit_identical(self, space):
        trace = _trace(space)
        journal = JournalConfig(snapshot_period_s=45.0)
        straight = MoDMSystem(space, _config(journal=journal))
        straight_payload = _run_payload(straight.run(trace))
        digest = straight._journal.digest()
        assert len(straight.snapshots) >= 2

        snapshot = straight.snapshots[len(straight.snapshots) // 2]
        resumed = MoDMSystem(space, _config(journal=journal))
        snapshot.restore(resumed)
        resumed_payload = _run_payload(resumed.resume(trace))
        assert resumed_payload == straight_payload
        assert resumed._journal.digest() == digest

    def test_every_snapshot_resumes_identically(self, space):
        trace = _trace(space, n=60)
        journal = JournalConfig(snapshot_period_s=60.0)
        straight = MoDMSystem(space, _config(journal=journal))
        straight_payload = _run_payload(straight.run(trace))
        for snapshot in straight.snapshots:
            resumed = MoDMSystem(space, _config(journal=journal))
            snapshot.restore(resumed)
            assert _run_payload(resumed.resume(trace)) == (
                straight_payload
            )

    def test_fingerprint_rejects_config_mismatch(self, space):
        journal = JournalConfig(snapshot_period_s=60.0)
        straight = MoDMSystem(space, _config(journal=journal))
        straight.run(_trace(space, n=40))
        snapshot = straight.snapshots[0]
        other_seed = MoDMSystem(
            space, _config(journal=journal, seed="other")
        )
        with pytest.raises(ValueError, match="configuration mismatch"):
            snapshot.restore(other_seed)

    def test_cluster_replicas_refuse_full_capture(self, space):
        fleet = modm_cluster(
            space,
            _config(journal=JournalConfig(snapshot_period_s=60.0)),
            ClusterRoutingConfig(n_replicas=2),
        )
        # ``_fleet`` is installed on replicas at cluster-run start and
        # marks them as non-snapshottable (cache-only snapshots).
        fleet.run(_trace(space, n=10))
        with pytest.raises(ValueError, match="single-engine"):
            Snapshot.capture(fleet.replicas[0])


# ----------------------------------------------------------------------
# Journal-suffix replay: the journal is a sufficient record
# ----------------------------------------------------------------------
class TestJournalSuffixReplay:
    def _straight(self, space, trace):
        journal = JournalConfig(snapshot_period_s=45.0)
        straight = MoDMSystem(space, _config(journal=journal))
        payload = _run_payload(straight.run(trace))
        assert len(straight.snapshots) >= 2
        return straight, payload

    def test_suffix_replay_is_bit_identical(self, space):
        trace = _trace(space)
        straight, payload = self._straight(space, trace)
        reference = straight._journal.entries()

        snapshot = straight.snapshots[len(straight.snapshots) // 2]
        resumed = MoDMSystem(
            space,
            _config(journal=JournalConfig(snapshot_period_s=45.0)),
        )
        # No trace timeline: the journal's ARRIVAL suffix is the only
        # source of future arrivals.
        snapshot.restore(resumed, install_timeline=False)
        replayer = JournalReplayer(resumed, reference)
        assert replayer.n_cohorts > 0
        report = replayer.replay(trace_name=trace.name)
        replayer.verify()
        assert _run_payload(report) == payload
        assert resumed._journal.digest() == (
            straight._journal.digest()
        )

    def test_replayer_requires_a_journal(self, space):
        system = MoDMSystem(space, _config())
        system.run(_trace(space, n=10))
        with pytest.raises(ValueError, match="journaled system"):
            JournalReplayer(system, [])

    def test_replayer_rejects_prefix_mismatch(self, space):
        trace = _trace(space, n=60)
        straight, _payload_ = self._straight(space, trace)
        reference = straight._journal.entries()
        snapshot = straight.snapshots[-1]
        resumed = MoDMSystem(
            space,
            _config(journal=JournalConfig(snapshot_period_s=45.0)),
        )
        snapshot.restore(resumed, install_timeline=False)
        tampered = list(reference)
        time, kind, a, b, x = tampered[0]
        tampered[0] = (time, kind, a + 1, b, x)
        with pytest.raises(ValueError, match="prefix mismatch"):
            JournalReplayer(resumed, tampered)


# ----------------------------------------------------------------------
# Cache snapshot / restore (IVF included)
# ----------------------------------------------------------------------
def _filled_ivf_cache(n=300, dim=12):
    cache = VectorCache(
        capacity=n,
        embed_dim=dim,
        backend="ivf",
        ann=IVFParams(nlist=8, nprobe=4, train_min=64, seed="snap-ivf"),
    )
    for i in range(n):
        cache.insert(
            i, unit_vector(rng_for("snap-ivf", i), dim), now=float(i)
        )
    return cache


class TestCacheSnapshot:
    def test_ivf_round_trip_preserves_retrieval(self):
        dim = 12
        original = _filled_ivf_cache(dim=dim)
        state = original.snapshot()
        restored = VectorCache(
            capacity=300,
            embed_dim=dim,
            backend="ivf",
            ann=IVFParams(
                nlist=8, nprobe=4, train_min=64, seed="snap-ivf"
            ),
        )
        restored.restore(state)
        assert len(restored) == len(original)
        for i in range(50):
            query = unit_vector(rng_for("snap-ivf-q", i), dim)
            entry_a, sim_a = original.retrieve(query)
            entry_b, sim_b = restored.retrieve(query)
            assert entry_a.payload == entry_b.payload
            assert sim_a == sim_b

    def test_snapshot_is_isolated_from_later_inserts(self):
        dim = 12
        cache = _filled_ivf_cache(n=100, dim=dim)
        state = cache.snapshot()
        size_then = len(cache)
        for i in range(100, 140):
            cache.insert(
                i, unit_vector(rng_for("snap-ivf", i), dim), now=float(i)
            )
        fresh = VectorCache(
            capacity=100,
            embed_dim=dim,
            backend="ivf",
            ann=IVFParams(
                nlist=8, nprobe=4, train_min=64, seed="snap-ivf"
            ),
        )
        fresh.restore(state)
        assert len(fresh) == size_then

    def test_clear_empties_the_cache(self):
        cache = _filled_ivf_cache(n=100)
        cache.clear()
        assert len(cache) == 0
