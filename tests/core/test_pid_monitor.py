"""Tests for the PID controller and the Global Monitor (Algorithm 1)."""

import pytest

from repro.cluster.stats import WindowStats
from repro.core.config import MonitorMode
from repro.core.monitor import Allocation, GlobalMonitor, MonitorConfig
from repro.core.pid import PIDController
from repro.diffusion.registry import get_model


def _window(rate_rpm, hit_rate, k_rates=None, window_s=60.0):
    arrivals = int(round(rate_rpm * window_s / 60.0))
    hits = int(round(arrivals * hit_rate))
    return WindowStats(
        window_s=window_s,
        arrivals=arrivals,
        hits=hits,
        misses=arrivals - hits,
        k_rates=k_rates or {15: 1.0},
    )


class TestPIDController:
    def test_zero_error_zero_output(self):
        pid = PIDController()
        assert pid.compute(5.0, 5.0) == 0.0

    def test_proportional_direction(self):
        pid = PIDController(kp=0.6, ki=0.0, kd=0.0)
        assert pid.compute(10.0, 5.0) > 0
        assert pid.compute(0.0, 5.0) < 0

    def test_paper_tuning_defaults(self):
        pid = PIDController()
        assert (pid.kp, pid.ki, pid.kd) == (0.6, 0.05, 0.05)

    def test_converges_to_setpoint(self):
        pid = PIDController()
        current = 0.0
        for _ in range(60):
            current += pid.compute(8.0, current)
        assert abs(current - 8.0) < 0.5

    def test_damps_step_change(self):
        """One period never jumps the full distance (stability, §5.3)."""
        pid = PIDController()
        delta = pid.compute(16.0, 4.0)
        assert 0 < delta < 12.0

    def test_integral_windup_clamped(self):
        pid = PIDController(integral_limit=2.0)
        for _ in range(100):
            pid.compute(100.0, 0.0)
        assert pid.integral == 2.0

    def test_reset_clears_state(self):
        pid = PIDController()
        pid.compute(10.0, 0.0)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.compute(5.0, 5.0) == 0.0

    def test_invalid_integral_limit(self):
        with pytest.raises(ValueError):
            PIDController(integral_limit=0.0)


@pytest.fixture
def monitor():
    return GlobalMonitor(
        MonitorConfig(mode=MonitorMode.THROUGHPUT, use_pid=False),
        large_model=get_model("sd3.5-large"),
        small_models=[get_model("sdxl"), get_model("sana-1.6b")],
        gpu_name="MI210",
        n_workers=16,
    )


class TestThroughputMode:
    def test_all_misses_all_large(self, monitor):
        alloc = monitor.allocate(_window(10.0, hit_rate=0.0))
        assert alloc.n_large == 16
        assert alloc.n_small == 0

    def test_high_hit_rate_shifts_small(self, monitor):
        alloc = monitor.allocate(_window(20.0, hit_rate=0.9))
        assert alloc.n_small > alloc.n_large

    def test_split_tracks_workload_ratio(self, monitor):
        # Eq. 12: n_large = miss / (miss + weighted_hit) * N.
        window = _window(20.0, hit_rate=0.8, k_rates={25: 1.0})
        alloc = monitor.allocate(window)
        p_large = monitor.profiled_throughput(get_model("sd3.5-large"))
        p_small = monitor.profiled_throughput(get_model("sdxl"))
        miss = 0.2 * 20.0
        hit = 0.8 * 20.0 * (1 - 25 / 50)
        weighted = hit * p_large / p_small
        expected = round(miss / (miss + weighted) * 16)
        assert abs(alloc.n_large - expected) <= 1

    def test_minimum_one_large(self, monitor):
        alloc = monitor.allocate(_window(20.0, hit_rate=1.0))
        assert alloc.n_large >= 1

    def test_no_demand_holds_allocation(self, monitor):
        first = monitor.allocate(_window(20.0, hit_rate=0.5))
        idle = monitor.allocate(_window(0.0, hit_rate=0.0))
        assert idle.n_large == first.n_large
        assert idle.miss_workload == 0.0


class TestQualityMode:
    @pytest.fixture
    def qmonitor(self):
        return GlobalMonitor(
            MonitorConfig(mode=MonitorMode.QUALITY, use_pid=False),
            large_model=get_model("sd3.5-large"),
            small_models=[get_model("sdxl")],
            gpu_name="MI210",
            n_workers=16,
        )

    def test_low_load_maximizes_large(self, qmonitor):
        alloc = qmonitor.allocate(_window(4.0, hit_rate=0.8))
        # Plenty of headroom: nearly all workers stay on the large model.
        assert alloc.n_large >= 14

    def test_quality_mode_uses_more_large_than_throughput(self, qmonitor, monitor):
        window = _window(14.0, hit_rate=0.8)
        q = qmonitor.allocate(window)
        t = monitor.allocate(window)
        assert q.n_large >= t.n_large

    def test_meets_miss_constraint(self, qmonitor):
        window = _window(12.0, hit_rate=0.5)
        alloc = qmonitor.allocate(window)
        p_large = qmonitor.profiled_throughput(get_model("sd3.5-large"))
        assert alloc.n_large * p_large >= alloc.miss_workload - 1e-9


class TestSmallModelSelection:
    def test_prefers_first_candidate_when_feasible(self, monitor):
        alloc = monitor.allocate(_window(10.0, hit_rate=0.8))
        assert alloc.small_model == "sdxl"

    def test_falls_back_to_faster_model_under_load(self, monitor):
        # Demand beyond what SDXL-based serving can cover (Fig. 10).
        alloc = monitor.allocate(
            _window(40.0, hit_rate=0.8, k_rates={15: 1.0})
        )
        assert alloc.small_model == "sana-1.6b"

    def test_single_candidate_always_used(self):
        monitor = GlobalMonitor(
            MonitorConfig(use_pid=False),
            large_model=get_model("sd3.5-large"),
            small_models=[get_model("sdxl")],
            gpu_name="MI210",
            n_workers=16,
        )
        alloc = monitor.allocate(_window(50.0, hit_rate=0.9))
        assert alloc.small_model == "sdxl"


class TestBacklogAwareness:
    def test_miss_backlog_pulls_large(self, monitor):
        no_backlog = monitor.allocate(_window(10.0, hit_rate=0.9))
        monitor.reset()
        with_backlog = monitor.allocate(
            _window(10.0, hit_rate=0.9), miss_backlog=200
        )
        assert with_backlog.n_large > no_backlog.n_large

    def test_hit_backlog_pulls_small(self, monitor):
        no_backlog = monitor.allocate(_window(10.0, hit_rate=0.1))
        monitor.reset()
        with_backlog = monitor.allocate(
            _window(10.0, hit_rate=0.1), hit_backlog_workload=150.0
        )
        assert with_backlog.n_small > no_backlog.n_small

    def test_negative_backlog_rejected(self, monitor):
        with pytest.raises(ValueError):
            monitor.allocate(_window(1.0, 0.5), miss_backlog=-1)


class TestPidIntegration:
    def test_pid_damps_reallocation(self):
        damped = GlobalMonitor(
            MonitorConfig(use_pid=True),
            large_model=get_model("sd3.5-large"),
            small_models=[get_model("sdxl")],
            gpu_name="MI210",
            n_workers=16,
        )
        # From all-large toward a small-heavy allocation: the first step
        # must not jump all the way.
        alloc = damped.allocate(_window(30.0, hit_rate=0.95))
        assert alloc.n_large > alloc.raw_target

    def test_pid_converges_over_periods(self):
        monitor = GlobalMonitor(
            MonitorConfig(use_pid=True),
            large_model=get_model("sd3.5-large"),
            small_models=[get_model("sdxl")],
            gpu_name="MI210",
            n_workers=16,
        )
        window = _window(20.0, hit_rate=0.8)
        last = None
        for _ in range(30):
            last = monitor.allocate(window)
        assert abs(last.n_large - round(last.raw_target)) <= 1

    def test_reset_restores_initial_state(self, monitor):
        monitor.allocate(_window(30.0, hit_rate=0.9))
        monitor.reset()
        assert monitor.current_num_large == 16.0
        assert monitor.current_small == "sdxl"


class TestAllocationValidation:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            Allocation(
                n_large=-1,
                n_small=2,
                small_model="sdxl",
                raw_target=1.0,
                miss_workload=0.0,
                hit_workload=0.0,
            )

    def test_monitor_requires_candidates(self):
        with pytest.raises(ValueError):
            GlobalMonitor(
                MonitorConfig(),
                large_model=get_model("sd3.5-large"),
                small_models=[],
                gpu_name="MI210",
                n_workers=4,
            )
