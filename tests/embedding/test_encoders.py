"""Tests for the CLIP-like text and image encoders."""

import numpy as np
import pytest

from repro.embedding.image_encoder import ClipLikeImageEncoder
from repro.embedding.space import cosine
from repro.embedding.text_encoder import ClipLikeTextEncoder, prompt_mixture


@pytest.fixture(scope="module")
def text_encoder(space):
    return ClipLikeTextEncoder(space)


@pytest.fixture(scope="module")
def image_encoder(space):
    return ClipLikeImageEncoder(space)


class TestTextEncoder:
    def test_unit_norm(self, text_encoder, prompts):
        emb = text_encoder.encode(prompts[0])
        assert np.isclose(np.linalg.norm(emb), 1.0)

    def test_embed_dim(self, text_encoder, space, prompts):
        assert text_encoder.encode(prompts[0]).shape == (
            space.config.embed_dim,
        )

    def test_cache_returns_identical_object(self, text_encoder, prompts):
        a = text_encoder.encode(prompts[0])
        b = text_encoder.encode(prompts[0])
        assert a is b

    def test_cache_disabled(self, space, prompts):
        enc = ClipLikeTextEncoder(space, cache_embeddings=False)
        a = enc.encode(prompts[0])
        b = enc.encode(prompts[0])
        assert a is not b
        assert np.allclose(a, b)

    def test_clear_cache(self, space, prompts):
        enc = ClipLikeTextEncoder(space)
        a = enc.encode(prompts[0])
        enc.clear_cache()
        assert enc.encode(prompts[0]) is not a

    def test_batch_matches_single(self, text_encoder, prompts):
        batch = text_encoder.encode_batch(prompts[:4])
        assert batch.shape == (4, text_encoder.embed_dim)
        for i in range(4):
            assert np.allclose(batch[i], text_encoder.encode(prompts[i]))

    def test_empty_batch(self, text_encoder):
        assert text_encoder.encode_batch([]).shape == (
            0,
            text_encoder.embed_dim,
        )

    def test_same_session_prompts_similar(self, text_encoder, ddb_trace):
        by_session = {}
        for r in ddb_trace:
            by_session.setdefault(r.prompt.session_id, []).append(r.prompt)
        sessions = [p for p in by_session.values() if len(p) >= 2]
        p1, p2 = sessions[0][0], sessions[0][1]
        same = cosine(text_encoder.encode(p1), text_encoder.encode(p2))
        other = sessions[10][0]
        cross = cosine(text_encoder.encode(p1), text_encoder.encode(other))
        assert same > cross

    def test_text_text_floor_dominates(self, text_encoder, prompts):
        # The shared text anchor keeps even unrelated prompts correlated.
        sim = cosine(
            text_encoder.encode(prompts[0]),
            text_encoder.encode(prompts[50]),
        )
        assert sim > 0.5

    def test_mixture_unit_norm(self, space, prompts):
        mix = prompt_mixture(space, prompts[0])
        assert np.isclose(np.linalg.norm(mix), 1.0)
        assert mix.shape == (space.config.semantic_dim,)


class TestImageEncoder:
    def test_unit_norm(self, image_encoder, sample_images):
        emb = image_encoder.encode(sample_images[0])
        assert np.isclose(np.linalg.norm(emb), 1.0)

    def test_cache(self, image_encoder, sample_images):
        a = image_encoder.encode(sample_images[0])
        assert image_encoder.encode(sample_images[0]) is a

    def test_batch_matches_single(self, image_encoder, sample_images):
        batch = image_encoder.encode_batch(sample_images[:3])
        for i in range(3):
            assert np.allclose(
                batch[i], image_encoder.encode(sample_images[i])
            )

    def test_wrong_content_shape_rejected(self, space):
        enc = ClipLikeImageEncoder(space, cache_embeddings=False)

        class Bad:
            image_id = "bad"
            content = np.zeros(space.config.semantic_dim + 3)

        with pytest.raises(ValueError):
            enc.encode(Bad())

    def test_encoder_noise_perturbs_identical_content(
        self, space, sample_images
    ):
        enc = ClipLikeImageEncoder(space, cache_embeddings=False)

        class Clone:
            def __init__(self, image_id, content):
                self.image_id = image_id
                self.content = content

        img = sample_images[0]
        a = enc.encode(Clone("id-a", img.content))
        b = enc.encode(Clone("id-b", img.content))
        assert not np.allclose(a, b)
        assert cosine(a, b) > 0.99


class TestModalityGap:
    def test_text_image_similarity_in_calibrated_band(
        self, space, text_encoder, image_encoder, large_model, prompts
    ):
        sims = []
        for p in prompts[:50]:
            img = large_model.generate(p, seed="gap-test").image
            sims.append(
                cosine(text_encoder.encode(p), image_encoder.encode(img))
            )
        mean = float(np.mean(sims))
        # Tables 2-3 calibrate vanilla CLIP ~0.285.
        assert 0.26 < mean < 0.31

    def test_unrelated_image_near_floor(
        self, space, text_encoder, image_encoder, large_model, prompts
    ):
        img = large_model.generate(prompts[0], seed="gap-test").image
        sim = cosine(
            text_encoder.encode(prompts[99]), image_encoder.encode(img)
        )
        assert sim < 0.24


class TestEncodeBatchVectorized:
    """The vectorized uncached-prompt path must be bit-identical to
    sequential encode() calls and preserve cache semantics."""

    def test_batch_bit_identical_to_sequential(self, space, prompts):
        seq = ClipLikeTextEncoder(space)
        bat = ClipLikeTextEncoder(space)
        seq.clear_cache()  # also drops the process-wide memo
        expected = np.stack([seq.encode(p) for p in prompts[:16]])
        bat.clear_cache()
        got = bat.encode_batch(prompts[:16])
        assert (got == expected).all()

    def test_duplicates_share_one_embedding(self, space, prompts):
        enc = ClipLikeTextEncoder(space)
        enc.clear_cache()
        batch = [prompts[0], prompts[1], prompts[0], prompts[0]]
        out = enc.encode_batch(batch)
        assert (out[0] == out[2]).all() and (out[0] == out[3]).all()

    def test_batch_populates_cache_for_singleton_encode(
        self, space, prompts
    ):
        enc = ClipLikeTextEncoder(space)
        enc.clear_cache()
        out = enc.encode_batch(prompts[:3])
        for i in range(3):
            assert (enc.encode(prompts[i]) == out[i]).all()

    def test_mixed_cached_and_fresh_rows(self, space, prompts):
        enc = ClipLikeTextEncoder(space)
        enc.clear_cache()
        first = enc.encode(prompts[0])
        out = enc.encode_batch(prompts[:4])
        assert (out[0] == first).all()
        reference = ClipLikeTextEncoder(space, cache_embeddings=False)
        for i in range(1, 4):
            assert (out[i] == reference.encode(prompts[i])).all()

    def test_uncached_encoder_batch_matches(self, space, prompts):
        enc = ClipLikeTextEncoder(space, cache_embeddings=False)
        out = enc.encode_batch(prompts[:5])
        for i in range(5):
            assert (out[i] == enc.encode(prompts[i])).all()

    def test_cross_instance_memo_shares_embeddings(self, space, prompts):
        a = ClipLikeTextEncoder(space)
        a.clear_cache()
        emb = a.encode(prompts[0])
        b = ClipLikeTextEncoder(space)
        assert b.encode(prompts[0]) is emb


class TestRetrievalBatchPaths:
    def test_t2t_query_embeddings_match_singletons(self, space, prompts):
        from repro.core.retrieval import TextToTextRetrieval

        seq = TextToTextRetrieval(space)
        bat = TextToTextRetrieval(space)
        expected = np.stack(
            [seq.query_embedding(p) for p in prompts[:8]]
        )
        got = bat.query_embeddings(prompts[:8])
        assert (got == expected).all()

    def test_t2i_query_embeddings_match_singletons(self, space, prompts):
        from repro.core.retrieval import TextToImageRetrieval

        seq = TextToImageRetrieval(space)
        bat = TextToImageRetrieval(space)
        expected = np.stack(
            [seq.query_embedding(p) for p in prompts[:8]]
        )
        got = bat.query_embeddings(prompts[:8])
        assert (got == expected).all()
