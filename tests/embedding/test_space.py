"""Tests for the semantic space and modality geometry."""

import numpy as np
import pytest

from repro.embedding.space import (
    SpaceConfig,
    cosine,
    cosine_matrix,
)


class TestSpaceConfig:
    def test_embed_dim_adds_anchor_axes(self):
        cfg = SpaceConfig(semantic_dim=48)
        assert cfg.embed_dim == 50

    def test_floor_gain_relationship(self):
        cfg = SpaceConfig()
        a2 = cfg.modality_scale**2
        assert np.isclose(cfg.text_image_floor, cfg.modality_gap / (1 + a2))
        assert np.isclose(cfg.text_image_gain, a2 / (1 + a2))

    def test_text_text_floor_above_text_image_floor(self):
        cfg = SpaceConfig()
        assert cfg.text_text_floor > cfg.text_image_floor

    def test_invalid_semantic_dim(self):
        with pytest.raises(ValueError):
            SpaceConfig(semantic_dim=1)

    def test_invalid_modality_gap(self):
        with pytest.raises(ValueError):
            SpaceConfig(modality_gap=1.5)

    def test_invalid_modality_scale(self):
        with pytest.raises(ValueError):
            SpaceConfig(modality_scale=0.0)


class TestSemanticSpace:
    def test_topic_vectors_unit_norm(self, space):
        assert np.isclose(np.linalg.norm(space.topic_vector(3)), 1.0)

    def test_topic_vectors_cached(self, space):
        assert space.topic_vector(5) is space.topic_vector(5)

    def test_distinct_topics_distinct(self, space):
        assert not np.allclose(space.topic_vector(0), space.topic_vector(1))

    def test_drift_zero_magnitude_is_copy(self, space):
        base = space.topic_vector(0)
        drifted = space.drift(base, 0.0, "key")
        assert np.allclose(drifted, base)
        assert drifted is not base

    def test_drift_reduces_similarity_with_magnitude(self, space):
        base = space.topic_vector(0)
        near = space.drift(base, 0.1, "k")
        far = space.drift(base, 0.8, "k")
        assert cosine(base, near) > cosine(base, far)

    def test_drift_negative_magnitude_rejected(self, space):
        with pytest.raises(ValueError):
            space.drift(space.topic_vector(0), -0.1, "k")

    def test_anchor_geometry(self, space):
        t_anchor = space.text_anchor()
        i_anchor = space.image_anchor()
        assert np.isclose(np.linalg.norm(t_anchor), 1.0)
        assert np.isclose(np.linalg.norm(i_anchor), 1.0)
        assert np.isclose(
            float(t_anchor @ i_anchor), space.config.modality_gap
        )

    def test_pad_project_roundtrip(self, space):
        sem = space.topic_vector(2)
        padded = space.pad(sem)
        assert padded.shape == (space.config.embed_dim,)
        assert np.allclose(space.project(padded), sem)

    def test_pad_rejects_wrong_shape(self, space):
        with pytest.raises(ValueError):
            space.pad(np.zeros(space.config.semantic_dim + 1))

    def test_expected_cosine_formulas(self, space):
        cfg = space.config
        assert np.isclose(
            space.expected_text_image_cosine(0.0), cfg.text_image_floor
        )
        assert np.isclose(
            space.expected_text_image_cosine(1.0),
            cfg.text_image_floor + cfg.text_image_gain,
        )
        assert space.expected_text_text_cosine(0.0) > 0.7


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.isclose(cosine(v, v), 1.0)

    def test_orthogonal_vectors(self):
        assert np.isclose(
            cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])), 0.0
        )

    def test_zero_vector_returns_zero(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_scale_invariant(self):
        a = np.array([1.0, 2.0])
        assert np.isclose(cosine(a, 5 * a), 1.0)


class TestCosineMatrix:
    def test_shape(self):
        q = np.random.default_rng(0).standard_normal((3, 8))
        k = np.random.default_rng(1).standard_normal((5, 8))
        assert cosine_matrix(q, k).shape == (3, 5)

    def test_matches_scalar_cosine(self):
        rng = np.random.default_rng(2)
        q = rng.standard_normal((2, 6))
        k = rng.standard_normal((4, 6))
        mat = cosine_matrix(q, k)
        for i in range(2):
            for j in range(4):
                assert np.isclose(mat[i, j], cosine(q[i], k[j]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            cosine_matrix(np.zeros(3), np.zeros((2, 3)))

    def test_zero_rows_yield_zero(self):
        q = np.zeros((1, 4))
        k = np.ones((1, 4))
        assert np.allclose(cosine_matrix(q, k), 0.0)
