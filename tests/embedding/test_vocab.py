"""Tests for the token vocabulary."""

import numpy as np
import pytest

from repro.embedding.vocab import (
    CATEGORIES,
    Vocabulary,
    surface_vector,
    token_vector,
)
from repro._rng import rng_for


class TestTokenVector:
    def test_unit_norm(self):
        assert np.isclose(np.linalg.norm(token_vector("dragon", 48)), 1.0)

    def test_deterministic(self):
        assert np.allclose(
            token_vector("dragon", 48), token_vector("dragon", 48)
        )

    def test_distinct_tokens_distinct_vectors(self):
        a = token_vector("dragon", 48)
        b = token_vector("castle", 48)
        assert not np.allclose(a, b)

    def test_dim_respected(self):
        assert token_vector("dragon", 12).shape == (12,)

    def test_cache_returns_same_object(self):
        assert token_vector("cat", 48) is token_vector("cat", 48)


class TestSurfaceVector:
    def test_empty_tokens_zero_vector(self):
        assert np.allclose(surface_vector([], 16), np.zeros(16))

    def test_unit_norm_for_nonempty(self):
        vec = surface_vector(["dragon", "castle"], 48)
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_token_order_irrelevant(self):
        a = surface_vector(["dragon", "castle"], 48)
        b = surface_vector(["castle", "dragon"], 48)
        assert np.allclose(a, b)

    def test_overlap_raises_similarity(self):
        base = ["dragon", "castle", "watercolor", "at-sunset"]
        near = ["dragon", "castle", "watercolor", "at-dawn"]
        far = ["robot", "city", "cyberpunk", "at-night"]
        sim_near = float(surface_vector(base, 48) @ surface_vector(near, 48))
        sim_far = float(surface_vector(base, 48) @ surface_vector(far, 48))
        assert sim_near > sim_far
        assert sim_near > 0.5


class TestVocabulary:
    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            Vocabulary(dim=0)

    def test_rejects_empty_category(self):
        with pytest.raises(ValueError):
            Vocabulary(dim=8, categories={"empty": ()})

    def test_default_categories_present(self):
        vocab = Vocabulary(dim=16)
        assert set(vocab.categories) == set(CATEGORIES)

    def test_tokens_in_unknown_category(self):
        vocab = Vocabulary(dim=16)
        with pytest.raises(KeyError):
            vocab.tokens_in("nope")

    def test_sample_draws_from_pool(self):
        vocab = Vocabulary(dim=16)
        token = vocab.sample("subject", rng_for("test"))
        assert token in vocab.tokens_in("subject")

    def test_vector_cached(self):
        vocab = Vocabulary(dim=16)
        assert vocab.vector("dragon") is vocab.vector("dragon")

    def test_surface_matches_module_function(self):
        vocab = Vocabulary(dim=48)
        tokens = ["dragon", "castle"]
        assert np.allclose(
            vocab.surface(tokens), surface_vector(tokens, 48)
        )

    def test_all_tokens_flat_list(self):
        vocab = Vocabulary(dim=16)
        assert len(vocab.all_tokens) == sum(
            len(pool) for pool in vocab.categories.values()
        )
