"""Fig. 14 — quality-performance trade-off space (FLUX)."""

from conftest import run_experiment
from repro.experiments.figures import fig14_tradeoff


def test_fig14_tradeoff(benchmark, ctx):
    result = run_experiment(benchmark, fig14_tradeoff, ctx)
    by_config = {r["config"]: r for r in result.rows}
    flux = by_config["FLUX"]
    # MoDM points dominate the standalone large model on speed while
    # staying far below standalone small models on FID (Pareto frontier).
    modm = by_config["MoDM-SDXL-cachelarge"]
    assert modm["inv_throughput"] < flux["inv_throughput"]
    assert modm["fid"] < by_config["SDXL"]["fid"]
