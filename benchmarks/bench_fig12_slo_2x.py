"""Fig. 12 — SLO violation rate at 2x the large model latency."""

from conftest import run_experiment
from repro.experiments.figures import fig12_slo_2x


def test_fig12_slo_2x(benchmark, ctx):
    result = run_experiment(benchmark, fig12_slo_2x, ctx)
    mi210 = [r for r in result.rows if r["gpu"] == "MI210"]
    top_rate = max(r["rate_rpm"] for r in mi210)
    at_top = {
        r["system"]: r["violation_2x"]
        for r in mi210
        if r["rate_rpm"] == top_rate
    }
    # Beyond the baselines' knee, only MoDM keeps violations low.
    assert at_top["vanilla"] > 0.5
    assert at_top["modm"] < at_top["vanilla"]
