"""Table 3 — image quality with FLUX as the large model."""

from conftest import run_experiment
from repro.experiments.tables import table3_image_quality_flux


def test_table3_image_quality_flux(benchmark, ctx):
    result = run_experiment(benchmark, table3_image_quality_flux, ctx)
    rows = {r["system"]: r for r in result.rows}
    vanilla = rows["Vanilla (flux.1-dev)"]
    assert vanilla["fid"] < rows["MoDM-SDXL"]["fid"] < rows["SDXL"]["fid"]
    assert rows["Pinecone"]["clip"] < vanilla["clip"]
