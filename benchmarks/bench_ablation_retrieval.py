"""Ablation: text-to-image vs text-to-text retrieval inside full MoDM.

Fig. 2 compares the retrieval policies in isolation; this ablation swaps
the policy inside the end-to-end system and measures the quality of the
images actually served.
"""

from repro.core.config import CacheAdmission
from repro.core.retrieval import TextToTextRetrieval
from repro.experiments.harness import CacheOnlyRun
from repro.experiments.reporting import ExperimentResult

import os


def _save(result: ExperimentResult) -> None:
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{result.experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(result.render() + "\n")

#: On the text-semantic scale, this threshold admits roughly as many hits
#: as the calibrated text-to-image selector, isolating retrieval *quality*
#: from hit-rate differences.
T2T_THRESHOLDS = {5: 0.80, 10: 0.83, 15: 0.86, 20: 0.89, 25: 0.92, 30: 0.95}


def test_ablation_retrieval_policy(benchmark, ctx):
    from repro.core.kselection import KSelector

    trace = ctx.diffusiondb()
    warm, serve_trace = ctx.split(trace)
    prompts = [r.prompt for r in serve_trace][: ctx.scale.quality_requests]
    gt = ctx.ground_truth(prompts)

    def experiment():
        result = ExperimentResult(
            experiment_id="ablation-retrieval",
            title="Retrieval policy inside end-to-end MoDM",
            paper_reference="§3.2: cross-modal retrieval aligns better",
        )
        runs = {
            "text-to-image": ctx.modm_cache_run(),
            "text-to-text": CacheOnlyRun(
                space=ctx.space,
                retrieval=TextToTextRetrieval(ctx.space),
                selector=KSelector(dict(T2T_THRESHOLDS)),
                large=ctx.model("sd3.5-large"),
                refine_with=ctx.model("sdxl"),
                cache_capacity=ctx.scale.cache_capacity,
                admission=CacheAdmission.ALL,
            ),
        }
        for name, run in runs.items():
            run.warm(warm)
            run.serve(prompts)
            pairs = run.images()
            hit_pairs = [
                (r.prompt, r.image) for r in run.records if r.hit
            ]
            result.add_row(
                policy=name,
                hit_rate=run.hit_rate(),
                clip_all=ctx.clip.mean_score(pairs),
                clip_hits=(
                    ctx.clip.mean_score(hit_pairs)
                    if hit_pairs
                    else float("nan")
                ),
                fid=gt.score([img for _, img in pairs]),
            )
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(result.render())
    _save(result)
    rows = {r["policy"]: r for r in result.rows}
    # Served-image alignment is higher under cross-modal retrieval.
    assert (
        rows["text-to-image"]["clip_hits"]
        > rows["text-to-text"]["clip_hits"]
    )
