"""Fault tolerance — replica kill/restart with cold vs warm recovery.

Deterministic and gating in CI at smoke scale: killing 1 of 4 replicas
mid-trace must lose zero requests (orphans re-route across survivors),
and a warm restart (cache restored from the replica's last periodic
snapshot) must recover at least 90% of the pre-kill hit rate while a
cold restart measurably does not.  The cascade rows kill 2 of 4
replicas at once (rack-style fate sharing) and pin cache migration:
survivors adopting the dead replicas' cache shards
(``nearest_centroid``) must beat dropping them cold over the recovery
window.  The JSON twin of the result table is written unconditionally
(``benchmarks/results/fault_tolerance.json`` + repo-root
``BENCH_fault_tolerance.json``) so the recovery numbers are recorded
for every PR alongside ``BENCH_cluster_routing.json``.
"""

import _output
from conftest import run_experiment
from repro.experiments.figures import fault_tolerance


def test_fault_tolerance(benchmark, ctx):
    result = run_experiment(benchmark, fault_tolerance, ctx)
    _output.write_json(
        "fault_tolerance",
        _output.result_payload(result),
        also_root="BENCH_fault_tolerance.json",
    )
    rows = {r["mode"]: r for r in result.rows}
    assert set(rows) == {
        "none",
        "cold",
        "warm",
        "cascade-drop",
        "cascade-migrate",
    }

    # Conservation: no mode ever loses a request — every arrival either
    # completes or is shed, and killed replicas' orphans are re-routed.
    for row in result.rows:
        assert row["n_lost"] == 0
    healthy = rows["none"]
    assert healthy["n_rerouted"] == 0
    for mode in ("cold", "warm"):
        assert rows[mode]["completed"] == healthy["completed"]

    # Journaling keeps the pre-kill simulation identical across modes,
    # so cold and warm share the same hit rate at the moment of failure.
    cold, warm = rows["cold"], rows["warm"]
    assert cold["hit_rate_before"] == warm["hit_rate_before"]

    # Acceptance: warm restore recovers >= 90% of the pre-kill hit rate;
    # a cold restart is measurably worse in the same recovery window.
    assert warm["hit_rate_after"] is not None
    assert warm["hit_rate_after"] >= 0.9 * warm["hit_rate_before"]
    cold_after = cold["hit_rate_after"]
    assert cold_after is None or cold_after < warm["hit_rate_after"]

    # Cascade acceptance: both fate-shared replicas die, nothing is
    # lost, and survivors adopting the dead caches strictly beat
    # dropping them over the recovery window after the kill.
    drop, migrate = rows["cascade-drop"], rows["cascade-migrate"]
    for row in (drop, migrate):
        assert row["n_killed"] == 2
    assert drop["n_migrated"] == 0
    assert migrate["n_migrated"] > 0
    assert migrate["hit_rate_migrated"] > drop["hit_rate_migrated"]
