"""Engineering benchmark: vectorized vs legacy-argsort retrieval latency.

The retrieval core replaced a full ``np.argsort`` scan (O(n log n)) with a
masked vectorized ``argmax`` (O(n)), and same-tick arrivals now score as
one matrix-matrix product (``retrieve_batch``) instead of one matvec plus
argsort each.  This bench measures per-query retrieval latency against
caches of 1k / 10k / 100k / 1M entries for three implementations:

* ``legacy_argsort`` — the pre-rebuild path (matvec + full descending
  argsort + python scan), replayed per query;
* ``vectorized`` — the rebuilt single-query path (matvec + masked argmax);
* ``batched`` — the rebuilt batch path (one gemm + row argmax), the hot
  path the Request Scheduler uses for same-tick arrival groups.

The embedding dimension matches the repo's semantic space (50), and the
acceptance bar is the batched path's >= 5x at the paper's 100k operating
point (§5.2: 0.05 s scans at 100k entries).

``REPRO_BENCH_SCALE=smoke`` stops at 100k entries; other scales include
the 1M point.
"""

from __future__ import annotations

import time

import numpy as np

from repro._rng import rng_for
from repro.core.cache import VectorCache
from repro.experiments.reporting import ExperimentResult

import _output
from conftest import bench_scale

EMBED_DIM = 50  # matches SemanticSpace().config.embed_dim
N_QUERIES = 32
SIZES = (1_000, 10_000, 100_000, 1_000_000)


def _legacy_argsort_retrieve(cache: VectorCache, query: np.ndarray):
    """The pre-rebuild retrieval path: full descending argsort, then the
    first live slot."""
    qnorm = float(np.linalg.norm(query))
    sims = cache._matrix @ (query / qnorm)
    for slot in np.argsort(sims)[::-1]:
        entry = cache._entries[int(slot)]
        if entry is not None:
            return entry, float(sims[int(slot)])
    return None, 0.0


def _build_cache(n_entries: int) -> VectorCache:
    rng = rng_for("bench-retrieval-scale", n_entries)
    matrix = rng.standard_normal((n_entries, EMBED_DIM))
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    cache = VectorCache(capacity=n_entries, embed_dim=EMBED_DIM)
    for i in range(n_entries):
        cache.insert(i, matrix[i], now=float(i))
    return cache


def _per_query_s(fn, repeats=3) -> float:
    fn()  # warm BLAS paths and page in the matrix outside the timed region
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats / N_QUERIES


def test_retrieval_scale(benchmark):
    sizes = [s for s in SIZES if bench_scale() != "smoke" or s <= 100_000]
    rng = rng_for("bench-retrieval-scale", "queries")
    queries = rng.standard_normal((N_QUERIES, EMBED_DIM))
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)

    def experiment() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="retrieval-scale",
            title="vectorized/batched vs legacy argsort retrieval",
            paper_reference="§5.2: 0.05 s scans over 100k cached entries",
        )
        for n_entries in sizes:
            cache = _build_cache(n_entries)
            legacy_s = _per_query_s(
                lambda: [
                    _legacy_argsort_retrieve(cache, q) for q in queries
                ]
            )
            single_s = _per_query_s(
                lambda: [cache.retrieve(q) for q in queries]
            )
            batch_s = _per_query_s(lambda: cache.retrieve_batch(queries))
            result.add_row(
                entries=n_entries,
                legacy_argsort_ms=legacy_s * 1e3,
                vectorized_ms=single_s * 1e3,
                batched_ms=batch_s * 1e3,
                vectorized_speedup=legacy_s / single_s,
                batched_speedup=legacy_s / batch_s,
            )
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(result.render())
    _output.emit(result)

    by_size = {row["entries"]: row for row in result.rows}
    # The acceptance bar: >= 5x at the paper's 100k operating point on the
    # batched hot path, and neither rebuilt path may ever be slower.
    assert by_size[100_000]["batched_speedup"] >= 5.0
    for row in result.rows:
        assert row["vectorized_speedup"] >= 1.0
        assert row["batched_speedup"] >= 1.0
