"""Structured benchmark output.

Benchmarks historically wrote only rendered ASCII tables to
``benchmarks/results/<id>.txt``.  This module adds machine-readable JSON
alongside them so the perf trajectory can be tracked across PRs:

* ``emit(result)`` — write the rendered text artefact (always) and, when
  the suite runs with ``--json``, a ``<id>.json`` twin of the same rows.
* ``write_json(name, payload, also_root=...)`` — write an explicit JSON
  payload (used by the serving hot-path benchmark, whose JSON artefact is
  the point of the benchmark and is therefore written unconditionally).
* ``profiled(name)`` — context manager wrapping a measured run in
  :mod:`cProfile` when the suite runs with ``--profile``, dumping
  ``results/<name>.pstats`` for ``pstats``/``snakeviz``; a no-op
  otherwise.

``JSON_ENABLED`` / ``PROFILE_ENABLED`` are set by ``conftest.py`` from
the ``--json`` / ``--profile`` pytest flags.
"""

from __future__ import annotations

import cProfile
import json
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.experiments.reporting import ExperimentResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Toggled by conftest.pytest_configure when pytest runs with --json.
JSON_ENABLED = False

#: Toggled by conftest.pytest_configure when pytest runs with --profile.
PROFILE_ENABLED = False


@contextmanager
def profiled(name: str) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block when ``--profile`` is active.

    Dumps ``results/<name>.pstats`` on exit (load with
    ``pstats.Stats(path)`` or any flamegraph viewer).  Without the flag
    the block runs untouched, so benchmarks wrap their measured runs in
    this unconditionally.
    """
    if not PROFILE_ENABLED:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        os.makedirs(RESULTS_DIR, exist_ok=True)
        profiler.dump_stats(os.path.join(RESULTS_DIR, f"{name}.pstats"))


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and other exotics to plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):  # pragma: no cover
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def result_payload(result: ExperimentResult) -> Dict[str, Any]:
    """JSON-ready dict of one :class:`ExperimentResult`.

    The ``scale`` tag comes from the same ``REPRO_BENCH_SCALE``
    environment variable the run itself was sized by, so every emitted
    artefact passes ``scripts/check_bench_json.py`` and states what it
    measured.
    """
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_reference": result.paper_reference,
        "notes": list(result.notes),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "default"),
        "rows": _jsonable(result.rows),
    }


def write_text(result: ExperimentResult) -> str:
    """Write the rendered table to ``results/<id>.txt``; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(result.render() + "\n")
    return path


def write_json(
    name: str,
    payload: Dict[str, Any],
    also_root: Optional[str] = None,
) -> str:
    """Write ``payload`` to ``results/<name>.json`` (and optionally a
    repo-root copy, e.g. ``BENCH_serving.json``); returns the results path.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    blob = json.dumps(_jsonable(payload), indent=2, sort_keys=True)
    with open(path, "w") as handle:
        handle.write(blob + "\n")
    if also_root:
        with open(os.path.join(REPO_ROOT, also_root), "w") as handle:
            handle.write(blob + "\n")
    return path


def emit(result: ExperimentResult) -> None:
    """Standard artefact emission: text always, JSON behind ``--json``."""
    write_text(result)
    if JSON_ENABLED:
        write_json(result.experiment_id, result_payload(result))
