"""Fig. 18 — energy savings vs Vanilla."""

from conftest import run_experiment
from repro.experiments.figures import fig18_energy


def test_fig18_energy(benchmark, ctx):
    result = run_experiment(benchmark, fig18_energy, ctx)
    savings = {r["system"]: r["savings_pct"] for r in result.rows}
    # Paper: Nirvana 23.9%, MoDM-SDXL 46.7%, MoDM-SANA 66.3%.
    assert 0 < savings["nirvana"] < savings["modm-sdxl"]
    assert savings["modm-sdxl"] < savings["modm-sana"]
    assert savings["modm-sana"] > 40.0
