"""Fig. 6 — cumulative hit rate over the trace at two cache sizes."""

from conftest import run_experiment
from repro.experiments.figures import fig6_hit_rate_over_trace


def test_fig6_hit_rate_over_trace(benchmark, ctx):
    result = run_experiment(benchmark, fig6_hit_rate_over_trace, ctx)
    last = result.rows[-1]
    rates = [v for k, v in last.items() if k.startswith("hit_rate")]
    # Hit rate is high and consistent across cache sizes (paper's point
    # that a subset of the trace generalizes).
    assert all(r > 0.5 for r in rates)
    assert max(rates) - min(rates) < 0.25
