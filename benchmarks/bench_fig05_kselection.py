"""Fig. 5 — quality factor vs similarity and derived k thresholds."""

from conftest import run_experiment
from repro.experiments.figures import fig5_quality_vs_similarity


def test_fig5_quality_vs_similarity(benchmark, ctx):
    result = run_experiment(benchmark, fig5_quality_vs_similarity, ctx)
    curves = [r for r in result.rows if isinstance(r["k"], int)]
    # At fixed k, quality rises with similarity (Fig. 5a slope).
    for row in curves:
        assert row["factor_q4"] >= row["factor_q1"] - 0.05
    # High-k refinement is most sensitive to poor retrievals.
    k30 = next(r for r in curves if r["k"] == 30)
    k5 = next(r for r in curves if r["k"] == 5)
    assert k30["factor_q1"] < k5["factor_q1"] + 0.05
