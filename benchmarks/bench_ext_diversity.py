"""Extension: quantitative generation diversity (§A.8 Q.10 future work).

The paper argues the FIFO sliding window preserves generation diversity by
evicting popular entries on schedule, while a utility-based cache keeps
hot templates alive and biases future generations toward them.  This bench
quantifies that claim with the diversity metrics the paper leaves to
future work.
"""

import os

from repro.experiments.reporting import ExperimentResult
from repro.metrics.diversity import class_coverage, pairwise_diversity


def _save(result: ExperimentResult) -> None:
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{result.experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(result.render() + "\n")


def test_ext_generation_diversity(benchmark, ctx):
    trace = ctx.diffusiondb()
    warm, serve = ctx.split(trace)
    prompts = [r.prompt for r in serve][: ctx.scale.quality_requests]

    def experiment():
        result = ExperimentResult(
            experiment_id="ext-diversity",
            title="Generation diversity under FIFO vs utility caching",
            paper_reference=(
                "§A.8 Q.10: FIFO maintains diversity; quantitative "
                "evaluation left to future work"
            ),
        )
        # A small cache forces eviction pressure, where the policies
        # actually diverge.
        capacity = max(2, ctx.scale.cache_capacity // 8)
        for policy in ("fifo", "utility"):
            run = ctx.modm_cache_run(
                cache_capacity=capacity, cache_policy=policy
            )
            run.warm(warm[:capacity])
            run.serve(prompts)
            served = [img for _, img in run.images()]
            result.add_row(
                policy=policy,
                hit_rate=run.hit_rate(),
                pairwise_diversity=pairwise_diversity(served),
                class_coverage=class_coverage(served, ctx.inception),
            )
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(result.render())
    _save(result)
    rows = {r["policy"]: r for r in result.rows}
    # FIFO's served generations are at least as diverse as utility's.
    assert (
        rows["fifo"]["pairwise_diversity"]
        >= rows["utility"]["pairwise_diversity"] - 0.01
    )
    assert (
        rows["fifo"]["class_coverage"]
        >= rows["utility"]["class_coverage"] - 0.02
    )
