"""Table 2 — image quality across systems (Vanilla: SD3.5-Large)."""

from conftest import run_experiment
from repro.experiments.tables import table2_image_quality


def test_table2_image_quality(benchmark, ctx):
    result = run_experiment(benchmark, table2_image_quality, ctx)
    ddb = {
        r["system"]: r
        for r in result.rows
        if r["dataset"] == "diffusiondb"
    }
    vanilla = ddb["Vanilla (sd3.5-large)"]
    # FID orderings the paper reports: vanilla < MoDM < standalone small.
    assert vanilla["fid"] < ddb["MoDM-SDXL"]["fid"] < ddb["SDXL"]["fid"]
    assert ddb["MoDM-SANA"]["fid"] < ddb["SANA"]["fid"]
    # MoDM keeps CLIP close to the large model (>= 97%).
    assert ddb["MoDM-SDXL"]["clip"] > 0.97 * vanilla["clip"]
    # Pinecone's retrieval-only serving loses alignment.
    assert ddb["Pinecone"]["clip"] < vanilla["clip"]
