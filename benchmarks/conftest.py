"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  The run scale is controlled by the
``REPRO_BENCH_SCALE`` environment variable (``smoke`` / ``default`` /
``paper``; default ``default``) — results always state the scale they ran
at.  Experiments are deterministic, so a single benchmark round is
representative; pytest-benchmark captures the wall time of regenerating
each artefact.

Run with ``--json`` to also write machine-readable
``benchmarks/results/<id>.json`` twins of every text artefact, and with
``--profile`` to wrap every measured run in :mod:`cProfile` and dump
``benchmarks/results/<id>.pstats`` profiles alongside them.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments import ExperimentContext, SCALES

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _output


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store_true",
        default=False,
        help=(
            "also write machine-readable benchmarks/results/<id>.json "
            "artefacts alongside the text tables"
        ),
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help=(
            "wrap each measured run in cProfile and dump "
            "benchmarks/results/<id>.pstats artefacts"
        ),
    )


def pytest_configure(config):
    _output.JSON_ENABLED = config.getoption("--json", default=False)
    _output.PROFILE_ENABLED = config.getoption(
        "--profile", default=False
    )


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale not in SCALES:
        raise KeyError(
            f"REPRO_BENCH_SCALE={scale!r} unknown; choose from "
            f"{sorted(SCALES)}"
        )
    return scale


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(scale=bench_scale())


RESULTS_DIR = _output.RESULTS_DIR


def run_experiment(benchmark, fn, ctx, **kwargs):
    """Run one experiment under pytest-benchmark and print its result.

    The rendered table is also written to ``benchmarks/results/<id>.txt``
    (pytest captures stdout of passing tests, so the artefacts would
    otherwise only be visible on failure), plus a JSON twin when the
    suite runs with ``--json``.
    """
    profile_id = getattr(fn, "__name__", "experiment")

    def measured():
        with _output.profiled(profile_id):
            return fn(ctx, **kwargs)

    result = benchmark.pedantic(measured, rounds=1, iterations=1)
    print()
    print(result.render())
    _output.emit(result)
    return result
