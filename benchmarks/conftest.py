"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  The run scale is controlled by the
``REPRO_BENCH_SCALE`` environment variable (``smoke`` / ``default`` /
``paper``; default ``default``) — results always state the scale they ran
at.  Experiments are deterministic, so a single benchmark round is
representative; pytest-benchmark captures the wall time of regenerating
each artefact.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentContext, SCALES


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale not in SCALES:
        raise KeyError(
            f"REPRO_BENCH_SCALE={scale!r} unknown; choose from "
            f"{sorted(SCALES)}"
        )
    return scale


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(scale=bench_scale())


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_experiment(benchmark, fn, ctx, **kwargs):
    """Run one experiment under pytest-benchmark and print its result.

    The rendered table is also written to ``benchmarks/results/<id>.txt``
    (pytest captures stdout of passing tests, so the artefacts would
    otherwise only be visible on failure).
    """
    result = benchmark.pedantic(
        lambda: fn(ctx, **kwargs), rounds=1, iterations=1
    )
    rendered = result.render()
    print()
    print(rendered)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(rendered + "\n")
    return result
