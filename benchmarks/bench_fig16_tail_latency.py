"""Fig. 16 — P99 tail latency vs request rate."""

from conftest import run_experiment
from repro.experiments.figures import fig16_tail_latency


def test_fig16_tail_latency(benchmark, ctx):
    result = run_experiment(benchmark, fig16_tail_latency, ctx)
    mi210 = [r for r in result.rows if r["gpu"] == "MI210"]
    top_rate = max(r["rate_rpm"] for r in mi210)
    at_top = {
        r["system"]: r["p99_s"] for r in mi210 if r["rate_rpm"] == top_rate
    }
    assert at_top["modm"] < at_top["vanilla"] / 2
