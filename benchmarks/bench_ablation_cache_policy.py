"""Ablation: FIFO sliding-window vs utility-based cache maintenance (§5.4).

The paper argues FIFO matches utility-based eviction on production traces
(temporal locality makes recency the right signal) while keeping the cache
diverse.  This bench replays the same trace under both policies.
"""

import numpy as np

from repro.experiments.reporting import ExperimentResult

import os


def _save(result: ExperimentResult) -> None:
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{result.experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(result.render() + "\n")


def _run_policy(ctx, policy: str):
    trace = ctx.diffusiondb()
    warm, serve = ctx.split(trace)
    run = ctx.modm_cache_run(
        cache_capacity=max(2, ctx.scale.cache_capacity // 4),
        cache_policy=policy,
    )
    run.warm(warm)
    run.serve(
        [r.prompt for r in serve],
        [r.arrival_s for r in serve],
    )
    reuse = [e.hits for e in run.cache.entries()]
    return {
        "policy": policy,
        "hit_rate": run.hit_rate(),
        "max_entry_reuse": int(max(reuse) if reuse else 0),
        "mean_entry_reuse": float(np.mean(reuse)) if reuse else 0.0,
    }


def test_ablation_cache_policy(benchmark, ctx):
    def experiment():
        result = ExperimentResult(
            experiment_id="ablation-cache-policy",
            title="FIFO vs utility-based cache maintenance",
            paper_reference="§5.4: FIFO performs as well and stays diverse",
        )
        for policy in ("fifo", "utility"):
            result.add_row(**_run_policy(ctx, policy))
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(result.render())
    _save(result)
    rows = {r["policy"]: r for r in result.rows}
    # The paper's §5.4 finding: the simple FIFO sliding window keeps pace
    # with utility-based eviction on production-like traces.
    assert rows["fifo"]["hit_rate"] >= rows["utility"]["hit_rate"] - 0.05
