"""Fig. 7 — normalized throughput, SD3.5-Large vanilla."""

from conftest import run_experiment
from repro.experiments.figures import fig7_throughput


def test_fig7_throughput(benchmark, ctx):
    result = run_experiment(benchmark, fig7_throughput, ctx)
    ddb = {
        r["system"]: r["normalized"]
        for r in result.rows
        if r["dataset"] == "diffusiondb"
    }
    # Paper: 1.0 / 1.2 / 1.8 / 2.5 / 3.2.
    assert 1.0 < ddb["Nirvana"] < 1.6
    assert ddb["MoDM-SDXL"] > 1.9
    assert ddb["MoDM-SANA"] > ddb["MoDM-SDXL"]
