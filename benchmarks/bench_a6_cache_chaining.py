"""§A.6 — effect of caching small-model refinements on future quality."""

from conftest import run_experiment
from repro.experiments.tables import a6_small_model_cache_quality


def test_a6_cache_chaining(benchmark, ctx):
    result = run_experiment(benchmark, a6_small_model_cache_quality, ctx)
    clip = {r["stage2_cache"]: r["stage3_hit_clip"] for r in result.rows}
    # Paper: 29.63 / 28.58 / 28.32 — caching refined images costs little.
    drop = clip["full-SD3.5L"] - clip["refine-SDXL"]
    assert drop < 1.5
