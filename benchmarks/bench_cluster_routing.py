"""Cluster routing — cache-affinity vs load-only policies at 2/4/8 replicas.

Deterministic and gating in CI at smoke scale: ``cache_affinity`` must
beat ``round_robin`` on both fleet cache hit rate and p99 latency at 4
replicas under equal offered load.  The JSON twin of the result table is
written unconditionally (``benchmarks/results/cluster_routing.json`` +
repo-root ``BENCH_cluster_routing.json``) so the perf trajectory records
routing numbers for every PR alongside ``BENCH_serving.json``.
"""

import _output
from conftest import run_experiment
from repro.experiments.figures import cluster_routing


def test_cluster_routing(benchmark, ctx):
    result = run_experiment(benchmark, cluster_routing, ctx)
    _output.write_json(
        "cluster_routing",
        _output.result_payload(result),
        also_root="BENCH_cluster_routing.json",
    )
    rows = {(r["policy"], r["replicas"]): r for r in result.rows}

    # Sharding one cache across replicas costs hit rate; every fleet
    # stays below (or at) the single-engine reference.
    single = rows[("single-engine", 1)]
    assert all(
        r["hit_rate"] <= single["hit_rate"] + 0.02
        for r in result.rows
    )

    # Acceptance: cache-affinity routing wins on fleet hit rate and p99
    # latency at 4 replicas under equal load.
    affinity = rows[("cache_affinity", 4)]
    round_robin = rows[("round_robin", 4)]
    assert affinity["hit_rate"] > round_robin["hit_rate"]
    assert affinity["p99_s"] < round_robin["p99_s"]

    # Affinity's hit-rate edge should hold at every tested width.
    for n in (2, 4, 8):
        assert (
            rows[("cache_affinity", n)]["hit_rate"]
            >= rows[("round_robin", n)]["hit_rate"]
        )

    # Nothing is dropped: every row completed the whole serve trace.
    served = single["completed"]
    assert all(r["completed"] == served for r in result.rows)
