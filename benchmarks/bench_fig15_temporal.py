"""Fig. 15 — temporal locality of cache hits."""

from conftest import run_experiment
from repro.experiments.figures import fig15_temporal_locality


def test_fig15_temporal_locality(benchmark, ctx):
    result = run_experiment(benchmark, fig15_temporal_locality, ctx)
    within4 = next(
        r["fraction"] for r in result.rows if r["hours"] == "<=4h"
    )
    # Paper: >90% of hits retrieve images generated within four hours.
    assert within4 > 0.85
