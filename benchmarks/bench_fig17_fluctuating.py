"""Fig. 17 — throughput under fluctuating request rates."""

import numpy as np

from conftest import run_experiment
from repro.experiments.figures import fig17_fluctuating


def test_fig17_fluctuating(benchmark, ctx):
    result = run_experiment(benchmark, fig17_fluctuating, ctx)
    demand = np.array([r["demand_rpm"] for r in result.rows])
    modm = np.array([r["modm"] for r in result.rows])
    vanilla = np.array([r["vanilla"] for r in result.rows])
    # MoDM serves a larger share of offered load across the schedule.
    assert modm.sum() > vanilla.sum()
    assert modm.sum() > 0.7 * demand.sum()
