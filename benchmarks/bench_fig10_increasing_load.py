"""Fig. 10 — throughput under ramping demand with model switching."""

from conftest import run_experiment
from repro.experiments.figures import fig10_increasing_load


def test_fig10_increasing_load(benchmark, ctx):
    result = run_experiment(benchmark, fig10_increasing_load, ctx)
    # Judge at the peak-demand bucket (the final bucket can be a partial
    # window at the run horizon).
    peak = max(result.rows, key=lambda r: r["demand_rpm"])
    assert peak["modm"] > peak["vanilla"] * 1.5
    assert peak["modm"] > 0.7 * peak["demand_rpm"]
