"""Fig. 13 — SLO violation rate at 4x the large model latency."""

from conftest import run_experiment
from repro.experiments.figures import fig13_slo_4x


def test_fig13_slo_4x(benchmark, ctx):
    result = run_experiment(benchmark, fig13_slo_4x, ctx)
    mi210 = [r for r in result.rows if r["gpu"] == "MI210"]
    top_rate = max(r["rate_rpm"] for r in mi210)
    at_top = {
        r["system"]: r["violation_4x"]
        for r in mi210
        if r["rate_rpm"] == top_rate
    }
    assert at_top["modm"] < 0.5
    assert at_top["vanilla"] > at_top["modm"]
