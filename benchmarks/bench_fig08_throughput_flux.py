"""Fig. 8 — normalized throughput, FLUX vanilla."""

from conftest import run_experiment
from repro.experiments.figures import fig8_throughput_flux


def test_fig8_throughput_flux(benchmark, ctx):
    result = run_experiment(benchmark, fig8_throughput_flux, ctx)
    norm = {r["system"]: r["normalized"] for r in result.rows}
    # Paper: 1.0 / 1.2 / 2.0 / 2.4 / 2.9.
    assert norm["MoDM-SDXL"] > 1.8
    assert norm["MoDM-SANA"] > norm["MoDM-SDXL"]
    assert norm["Nirvana"] > 1.0
