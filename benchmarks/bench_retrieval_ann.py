"""Engineering benchmark: IVF-indexed vs exact retrieval at scale.

The semantic cache's exact backend scans every live slot per query — one
masked matrix-vector product, fine at the paper's 100k operating point
but linear in cache size.  The IVF backend (``retrieval_backend="ivf"``)
probes only the ``nprobe`` nearest coarse cells and re-ranks their
members exactly, making the per-query cost sublinear.  This bench pins
the trade at production scales:

* per-query latency of the exact masked-argmax path vs the IVF path,
  against caches of 100k / 1M entries (smoke stops at 100k);
* recall@1 and recall@10 of the IVF path against exact ground truth.

The workload is the clustered geometry a semantic cache accumulates:
entries drawn around seeded topic directions, queries arriving as noisy
near-duplicates of cached entries (the cache-hit regime MoDM exploits).

Acceptance: at the largest scale in the run the IVF path must be
>= MIN_SPEEDUP x faster with recall@1 >= RECALL_FLOOR.  Results are
written unconditionally to ``benchmarks/results/retrieval_ann.json``
and the repo-root ``BENCH_retrieval_ann.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro._rng import rng_for
from repro.core.ann import IVFParams
from repro.core.cache import VectorCache
from repro.experiments.reporting import ExperimentResult

import _output
from conftest import bench_scale

EMBED_DIM = 50  # matches SemanticSpace().config.embed_dim
N_QUERIES = 32  # timed queries
N_RECALL_QUERIES = 256  # recall sample (exact ground truth per query)
TOPK = 10
SIZES = (100_000, 1_000_000)
#: Probe width per cache size — recall@1 falls with the probed
#: *fraction* (nprobe/nlist), so the 1M point (nlist=1000) probes more
#: cells; both operating points clear the recall floor with margin
#: (0.97 at 100k, 0.98 at 1M) while staying well under a tenth of the
#: cache scanned.
NPROBE = {100_000: 32, 1_000_000: 96}

RECALL_FLOOR = 0.95
#: Speedup floors at the largest size of each run scale: 10x is the
#: 1M-entry acceptance bar (measured ~18x); smoke (100k on shared CI
#: runners, measured ~7x) gates a conservative 3x so noisy runners
#: don't flake the job.
MIN_SPEEDUP = {100_000: 3.0, 1_000_000: 10.0}


def _build_cache(n_entries: int, nprobe: int) -> VectorCache:
    """IVF-backed cache filled with clustered topic embeddings."""
    rng = rng_for("bench-retrieval-ann", n_entries)
    n_topics = max(64, n_entries // 250)
    topics = rng.standard_normal((n_topics, EMBED_DIM))
    topics /= np.linalg.norm(topics, axis=1, keepdims=True)
    matrix = topics[rng.integers(0, n_topics, n_entries)]
    matrix = matrix + 0.25 * rng.standard_normal(
        (n_entries, EMBED_DIM)
    )
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    cache = VectorCache(
        capacity=n_entries,
        embed_dim=EMBED_DIM,
        backend="ivf",
        ann=IVFParams(nprobe=nprobe, seed="bench-retrieval-ann"),
    )
    for i in range(n_entries):
        cache.insert(i, matrix[i], now=float(i))
    return cache


def _queries(cache: VectorCache, n_queries: int) -> np.ndarray:
    """Noisy near-duplicates of cached entries (the cache-hit regime)."""
    rng = rng_for("bench-retrieval-ann", "queries", cache.capacity)
    picks = rng.choice(cache.capacity, size=n_queries, replace=False)
    queries = cache._matrix[picks] + 0.1 * rng.standard_normal(
        (n_queries, EMBED_DIM)
    )
    return queries / np.linalg.norm(queries, axis=1, keepdims=True)


def _recall(cache: VectorCache, queries: np.ndarray):
    """(recall@1, recall@TOPK) of the IVF path vs exact ground truth."""
    hit1 = 0
    hitk = 0
    for query in queries:
        slot, sims = _exact_retrieve(cache, query)
        truth_entry = cache._entries[slot]
        order = np.argpartition(sims, -TOPK)[-TOPK:]
        truth_topk = {
            cache._entries[int(s)].entry_id for s in order
        }
        found, _ = cache.retrieve(query)
        hit1 += found.entry_id == truth_entry.entry_id
        found_topk = {
            e.entry_id for e, _ in cache.retrieve_topk(query, TOPK)
        }
        hitk += len(found_topk & truth_topk)
    return hit1 / len(queries), hitk / (len(queries) * TOPK)


def _exact_retrieve(cache: VectorCache, query: np.ndarray):
    """The exact masked-argmax path, replayed against the same matrix."""
    qnorm = float(np.linalg.norm(query))
    sims = cache._matrix @ (query / qnorm)
    if cache._free_slots:
        slot = int(np.argmax(np.where(cache._live, sims, -np.inf)))
    else:
        slot = int(np.argmax(sims))
    return slot, sims


def _per_query_s(fn, repeats=3) -> float:
    fn()  # warm BLAS paths / train the index outside the timed region
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats / N_QUERIES


def test_retrieval_ann(benchmark):
    sizes = [
        s for s in SIZES if bench_scale() != "smoke" or s <= 100_000
    ]

    def experiment() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="retrieval-ann",
            title="IVF-indexed vs exact retrieval at scale",
            paper_reference=(
                "§5.2 retrieval budget, extended to million-entry "
                "caches via an IVF index"
            ),
        )
        for n_entries in sizes:
            nprobe = NPROBE[n_entries]
            cache = _build_cache(n_entries, nprobe)
            # Recall on a wide sample before timing (trains the index).
            recall_1, recall_k = _recall(
                cache, _queries(cache, N_RECALL_QUERIES)
            )
            timed = _queries(cache, N_RECALL_QUERIES)[:N_QUERIES]
            exact_s = _per_query_s(
                lambda: [_exact_retrieve(cache, q) for q in timed]
            )
            ivf_s = _per_query_s(
                lambda: [cache.retrieve(q) for q in timed]
            )
            result.add_row(
                entries=n_entries,
                nlist=cache.index.nlist,
                nprobe=nprobe,
                exact_ms=exact_s * 1e3,
                ivf_ms=ivf_s * 1e3,
                speedup=exact_s / ivf_s,
                recall_at_1=recall_1,
                recall_at_k=recall_k,
                scan_entries_modelled=cache.scan_entries(),
            )
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(result.render())
    _output.write_json(
        "retrieval_ann",
        {
            "scale": bench_scale(),
            **_output.result_payload(result),
        },
        also_root="BENCH_retrieval_ann.json",
    )
    _output.emit(result)

    top = max(sizes)
    by_size = {row["entries"]: row for row in result.rows}
    assert by_size[top]["speedup"] >= MIN_SPEEDUP[top]
    for row in result.rows:
        assert row["recall_at_1"] >= RECALL_FLOOR
        # The modelled scheduler-side cost must be sublinear too.
        assert row["scan_entries_modelled"] < row["entries"] / 5
