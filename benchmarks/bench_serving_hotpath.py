"""Engineering benchmark: fast-path serving engine vs the pre-PR engine.

Runs the full MoDM system end-to-end (warm-up + serving a DiffusionDB-like
trace) under three engines and records machine-readable JSON so the perf
trajectory is tracked across PRs:

* ``pre_pr`` — a replica of the engine before the fast-path PR: plain
  deques with linear ready-scans and mid-deque deletes, one dispatch
  wakeup event per record, a full worker scan on every event, and
  per-call direction synthesis (``directions`` disabled, so every keyed
  vector rebuilds a BLAKE2b-seeded ``default_rng`` and ``np.linalg.norm``
  is used, exactly as before the PR).
* ``fast_cold`` — the rebuilt engine with every process-wide memo cleared:
  ready-deque + pending-heap queues, idle-worker set, coalesced wakeups,
  and fast (state-reset) synthesis, but nothing memoized yet.
* ``fast_steady`` — the rebuilt engine in its steady state: a replay of
  the same serving sequence with the direction/target/content/embedding
  memos warm.  This is the regime the memo layer exists for — experiment
  suites drive one trace through several systems and replays, and every
  keyed draw, target vector, and embedding recurs exactly.

All three engines are asserted **bit-identical** on every per-request
decision and completion time; only run time may differ.  Speedups are
ratios of **process CPU time** (wall time is recorded alongside): on
shared infrastructure host steal arrives in bursts, so with one engine
phase lasting minutes a contended window can distort a wall-clock
ratio by 3-4x in either direction.  The acceptance bars are >= 3x
end-to-end at the 10k-request ``default`` scale and >= 10x at the
100k-request steady-state ``paper`` scale, and the speedups are
recorded in ``benchmarks/results/serving_hotpath.json`` plus the
repo-root ``BENCH_serving.json``.

``REPRO_BENCH_SCALE=smoke`` serves 1.2k requests (CI); ``default``
keeps the historical 10k configuration so the trend line stays
comparable across PRs; ``paper`` serves a 100k-request steady-state
configuration (64 workers, small cache) where per-event engine
overhead — full worker polls, linear deque scans, per-record wakeup
closures — dominates the pre-PR runtime.
"""

from __future__ import annotations

import collections
import time

from repro._rng import directions, directions_disabled
from repro.core.config import CacheAdmission, ClusterConfig, MoDMConfig
from repro.core.serving import MoDMSystem, clear_hotpath_memos
from repro.embedding.space import SemanticSpace
from repro.experiments.reporting import ExperimentResult
from repro.workloads import DiffusionDBConfig, diffusiondb_trace

import _output
from conftest import bench_scale

#: (warm prompts, served requests, cache capacity, workers, admission,
#: image_id_len_cap) per scale; smoke stays CI-sized, default keeps the
#: historical 10k/16-worker acceptance config, paper runs the 100k
#: steady-state config.  Paper scale uses the paper's cache-large
#: admission plus a bounded image-id lineage
#: (``MoDMConfig.image_id_len_cap``): large-model refinements of cache
#: hits are themselves re-admitted, so even under cache-large the
#: refinement chains — and with them image-id/memo-key length, a cost
#: both engines share — grow linearly with depth; capping keeps the
#: 100k measurement isolating per-event engine overhead instead of
#: string growth.
_SIZES = {
    "smoke": (300, 1_200, 600, 16, CacheAdmission.ALL, None),
    "default": (2_000, 10_000, 2_000, 16, CacheAdmission.ALL, None),
    "paper": (2_000, 100_000, 512, 128, CacheAdmission.LARGE_ONLY, 256),
}
_TRACE_SEED = "serving-hotpath-v1"


class PrePRMoDMSystem(MoDMSystem):
    """Replica of the pre-fast-path MoDM engine.

    Restores the dispatch/queue behaviour of the engine this PR replaced
    (same role as ``_legacy_argsort_retrieve`` in the retrieval-scale
    bench): plain deques scanned linearly with mid-deque deletes, one
    wakeup event per record, and a full scan of all workers on every
    dispatch.  Policy is untouched, so its reports are bit-identical to
    the fast engine's.  Run it under ``directions_disabled()`` so vector
    synthesis also replays the pre-PR per-call cost.
    """

    def _reset_runtime(self) -> None:
        super()._reset_runtime()
        # Shadow the ready-queues with the old plain deques.
        self._miss_queue = collections.deque()
        self._hit_queue = collections.deque()

    def _schedule_trace_arrivals(self, records):
        # Pre-PR: one heap entry (tuple + closure) per arrival cohort
        # instead of the timeline lane's sorted-array cursor.
        start = 0
        for i in range(1, len(records) + 1):
            if (
                i == len(records)
                or records[i].arrival_s != records[start].arrival_s
            ):
                self._schedule_arrivals(records[start:i])
                start = i

    def _start(self, worker, item, now):
        # Pre-PR: one completion closure per job, no same-timestamp
        # completion cohorts.
        from repro.core.serving import Job

        record = item.record
        job = Job(
            request_id=record.request_id,
            model=item.model.spec,
            steps=item.steps,
            kind="refine" if item.source_image is not None else "full",
            skipped_steps=item.skipped_steps,
            extra_seconds=self._worker_overhead_s(item),
        )
        finish = worker.assign(job, now)
        self._idle_workers.discard(worker.worker_id)
        record.service_start_s = now
        record.worker_id = worker.worker_id
        record.model_name = item.model.spec.name
        record.steps_run = item.steps
        self._in_service[record.request_id] = item
        self.loop.schedule(
            finish, lambda t, w=worker: self._complete(w, t)
        )

    def _handle_arrivals(self, records, now):
        decisions = self.scheduler.decide_batch(
            [record.prompt for record in records], now
        )
        for record, decision in zip(records, decisions):
            record.decision = decision
            record.enqueued_s = now + decision.scheduler_latency_s
            if decision.hit:
                self._hit_queue.append(record)
            else:
                self._miss_queue.append(record)
            # Pre-PR: one wakeup event per record, no coalescing.
            if record.enqueued_s > self.loop.now:
                self.loop.schedule(
                    record.enqueued_s, lambda t: self._dispatch(t)
                )

    def _dispatch(self, now):
        # Pre-PR: poll every worker on every event.
        for worker in self.workers:
            if not worker.is_idle(now):
                continue
            item = self._next_work(worker, now)
            if item is None:
                continue
            self._start(worker, item, now)

    def _pop_ready(self, queue, now):
        for i, record in enumerate(queue):
            if record.enqueued_s is not None and record.enqueued_s <= now:
                del queue[i]
                return record
        return None

    def _next_work(self, worker, now):
        from repro.core.serving import _WorkItem
        from repro.diffusion.registry import get_model

        role = worker.effective_model() or self._large_spec.name
        if role == self._large_spec.name:
            record = self._pop_ready(self._miss_queue, now)
            if record is not None:
                return _WorkItem(
                    record=record,
                    model=self.model_sim(self._large_spec.name),
                    steps=self._large_spec.total_steps,
                    skipped_steps=0,
                )
            record = self._pop_ready(self._hit_queue, now)
            if record is not None:
                return self._refine_item(record, self._large_spec)
            return None
        record = self._pop_ready(self._hit_queue, now)
        if record is not None:
            return self._refine_item(record, get_model(role))
        return None


def _build_workload(scale):
    warm_n, serve_n, cache_capacity, n_workers, admission, id_cap = (
        _SIZES[scale]
    )
    space = SemanticSpace()
    trace = diffusiondb_trace(
        space,
        DiffusionDBConfig(n_requests=warm_n + serve_n, seed=_TRACE_SEED),
    )
    warm = [r.prompt for r in trace.requests[:warm_n]]
    serve = trace.slice(warm_n, warm_n + serve_n).rebase()
    return space, warm, serve, cache_capacity, n_workers, admission, id_cap


def _run_engine(
    system_cls, space, warm, serve, cache_capacity, n_workers,
    admission=CacheAdmission.ALL, id_cap=None,
):
    """One full end-to-end run; returns (wall s, cpu s, report)."""
    system = system_cls(
        space,
        MoDMConfig(
            cluster=ClusterConfig(
                gpu_name="MI210", n_workers=n_workers
            ),
            cache_capacity=cache_capacity,
            small_models=("sdxl",),
            store_images=False,
            cache_admission=admission,
            image_id_len_cap=id_cap,
        ),
    )
    system.warm_cache(warm)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    report = system.run(serve)
    cpu_s = time.process_time() - cpu0
    wall_s = time.perf_counter() - wall0
    return wall_s, cpu_s, report


def _signature(report):
    """Everything that must be bit-identical across engines."""
    return [
        (
            r.request_id,
            r.decision.hit,
            r.decision.k_steps,
            r.decision.similarity,
            r.completion_s,
        )
        for r in report.records
    ]


def test_serving_hotpath(benchmark):
    scale = bench_scale()
    space, warm, serve, cache_capacity, n_workers, admission, id_cap = (
        _build_workload(scale)
    )

    def experiment():
        # Pre-PR engine: legacy dispatch + reference per-call synthesis.
        clear_hotpath_memos(space)
        with directions_disabled():
            with _output.profiled("serving_hotpath_pre_pr"):
                legacy_s, legacy_cpu, legacy_report = _run_engine(
                    PrePRMoDMSystem, space, warm, serve, cache_capacity,
                    n_workers, admission, id_cap,
                )
        # Fast engine, cold: every process-wide memo empty.
        clear_hotpath_memos(space)
        with _output.profiled("serving_hotpath_fast_cold"):
            cold_s, cold_cpu, cold_report = _run_engine(
                MoDMSystem, space, warm, serve, cache_capacity,
                n_workers, admission, id_cap,
            )
        # Fast engine, steady state: memos warm from the previous run.
        with _output.profiled("serving_hotpath_fast_steady"):
            steady_s, steady_cpu, steady_report = _run_engine(
                MoDMSystem, space, warm, serve, cache_capacity,
                n_workers, admission, id_cap,
            )

        # The fast path may not change a single decision, latency, or
        # completion time — only wall time.
        legacy_sig = _signature(legacy_report)
        assert _signature(cold_report) == legacy_sig
        assert _signature(steady_report) == legacy_sig

        result = ExperimentResult(
            experiment_id="serving-hotpath",
            title="fast-path serving engine vs pre-PR engine",
            paper_reference=(
                "engineering — DirectionCache, ready-queue dispatch, "
                "wakeup coalescing"
            ),
        )
        result.add_note(f"scale={scale}")
        result.add_note(
            f"{len(serve)} served requests, {len(warm)} warm prompts, "
            f"cache={cache_capacity}, workers={n_workers}, "
            f"admission={admission.value}, id_cap={id_cap}"
        )
        result.add_note(
            "all engines verified bit-identical per-request "
            "(decisions + completion times)"
        )
        # Speedups are ratios of process CPU time, not wall time: on
        # shared infrastructure host steal lands in bursts, so a 45 s
        # phase hit by a contended window can report 3-4x its true
        # cost.  CPU time is steal-immune; both clocks are recorded.
        for name, wall, cpu in (
            ("pre_pr", legacy_s, legacy_cpu),
            ("fast_cold", cold_s, cold_cpu),
            ("fast_steady", steady_s, steady_cpu),
        ):
            result.add_row(
                engine=name,
                wall_s=wall,
                cpu_s=cpu,
                requests_per_s=len(serve) / cpu,
                speedup_vs_pre_pr=legacy_cpu / cpu,
            )

        payload = {
            "benchmark": "serving_hotpath",
            "scale": scale,
            "n_requests": len(serve),
            "n_warm": len(warm),
            "cache_capacity": cache_capacity,
            "n_workers": n_workers,
            "cache_admission": admission.value,
            "image_id_len_cap": id_cap,
            "hit_rate": legacy_report.hit_rate,
            "bit_identical": True,
            "engines": {
                "pre_pr": {
                    "wall_s": legacy_s,
                    "cpu_s": legacy_cpu,
                    "requests_per_s": len(serve) / legacy_cpu,
                },
                "fast_cold": {
                    "wall_s": cold_s,
                    "cpu_s": cold_cpu,
                    "requests_per_s": len(serve) / cold_cpu,
                },
                "fast_steady": {
                    "wall_s": steady_s,
                    "cpu_s": steady_cpu,
                    "requests_per_s": len(serve) / steady_cpu,
                },
            },
            "speedup_cold": legacy_cpu / cold_cpu,
            "speedup_steady": legacy_cpu / steady_cpu,
        }
        _output.write_json(
            "serving_hotpath", payload, also_root="BENCH_serving.json"
        )
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(result.render())
    _output.write_text(result)

    by_engine = {row["engine"]: row for row in result.rows}
    # The fast path must never lose to the engine it replaced.
    assert by_engine["fast_cold"]["speedup_vs_pre_pr"] >= 1.0
    # Acceptance bars: >= 3x end-to-end at the 10k-request default
    # scale (the memo layer's operating regime) and >= 10x at the
    # 100k-request steady-state paper scale, where per-event engine
    # overhead dominates the pre-PR runtime.  Smoke runs are too short
    # for stable wall-clock ratios; they only gate on > 1x.
    steady_speedup = by_engine["fast_steady"]["speedup_vs_pre_pr"]
    if scale == "smoke":
        assert steady_speedup > 1.0
    elif scale == "paper":
        assert steady_speedup >= 10.0
    else:
        assert steady_speedup >= 3.0
