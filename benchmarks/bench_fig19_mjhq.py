"""Fig. 19 — MJHQ hit rates (no temporal locality)."""

from conftest import run_experiment
from repro.experiments.figures import fig19_mjhq_hit_rates


def test_fig19_mjhq_hit_rates(benchmark, ctx):
    result = run_experiment(benchmark, fig19_mjhq_hit_rates, ctx)
    largest = max(r["cache_size"] for r in result.rows)
    at_largest = {
        r["system"]: r["hit_rate"]
        for r in result.rows
        if r["cache_size"] == largest
    }
    # Without temporal locality, caching small-model outputs buys little.
    gap = abs(
        at_largest["modm-cache-all"] - at_largest["modm-cache-large"]
    )
    assert gap < 0.15
    assert at_largest["modm-cache-all"] >= at_largest["nirvana"] - 0.05
