"""Tiered cache at scale — recall, resident memory, warm restart.

The ten-million-entry acceptance bench for :mod:`repro.core.tiering`
(ROADMAP: "Ten-million-entry cache tier").  Deterministic and gating in
CI at smoke scale; the committed ``BENCH_cache_tiering.json`` records a
local default-scale (10M-entry) run.  Three claims are checked:

* **Recall** — on a clustered corpus with near-duplicate queries (the
  semantic-cache regime), the tiered cache's top-1 result matches the
  exact brute-force best for >= 95% of queries, despite the fp16 scan
  tier.  Ground truth is computed by streaming the cold file with
  ``np.fromfile`` — never a whole-corpus memmap pass, whose touched
  pages would count against the resident-memory budget.
* **Memory** — at default (10M) scale the peak resident set stays under
  8 GiB: quantized blocks (~1 GiB) + hot tier (~0.5 GiB) + columnar
  entry state, instead of the ~8 GiB the flat float64 cache layout
  would need before counting its IVF blocks.
* **Warm restart** — a fresh cache object restoring the snapshot
  against the durable cold file replays a recorded query/hit phase
  bit-for-bit: same slots, same similarities, same hit rate.
"""

from __future__ import annotations

import gc
import resource
import tempfile
import time

import numpy as np

from repro._rng import rng_for
from repro.core.ann import IVFParams
from repro.core.tiering import TieredCacheConfig, TieredVectorCache

import _output
from conftest import bench_scale

EMBED_DIM = 50  # matches SemanticSpace().config.embed_dim
N_TOPICS = 4096
N_QUERIES = 256
N_REPLAY = 512  # query/hit events in the recorded warm-restart phase
CHUNK = 65_536
#: Hit when similarity clears this; 0.1-noise near-duplicates land
#: around 0.82 at dim 50, so the replay phase mixes hits and misses.
HIT_THRESHOLD = 0.80

#: Per-scale corpus sizing.  ``nprobe`` is tuned for >= 0.95 recall@1 on
#: the clustered workload at each size: probing 12.5% of the cells
#: clears the bar with margin at both sizes, while 3% (nprobe=128 at
#: 10M) measured 0.934 — misses are base rows whose own 0.25-sigma
#: noise assigned them to a cell outside the query's probe set.
SIZING = {
    "smoke": dict(n=200_000, nlist=512, nprobe=64),
    "default": dict(n=10_000_000, nlist=4096, nprobe=512),
    "paper": dict(n=10_000_000, nlist=4096, nprobe=512),
}

RESIDENT_BUDGET_GIB = 8.0


def _topics() -> np.ndarray:
    rng = rng_for("bench-tiering", "topics", N_TOPICS, EMBED_DIM)
    topics = rng.standard_normal((N_TOPICS, EMBED_DIM))
    return topics / np.linalg.norm(topics, axis=1, keepdims=True)


def _chunk_rows(topics: np.ndarray, start: int, count: int) -> np.ndarray:
    """Rows ``[start, start+count)`` of the clustered corpus, generated
    deterministically per chunk so the full corpus never exists in RAM."""
    rng = rng_for("bench-tiering", "rows", start)
    rows = topics[rng.integers(0, N_TOPICS, count)]
    rows = rows + 0.25 * rng.standard_normal((count, EMBED_DIM))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def _build_cache(n: int, sizing: dict, cold_dir: str) -> TieredVectorCache:
    topics = _topics()

    def chunks():
        for start in range(0, n, CHUNK):
            yield _chunk_rows(topics, start, min(CHUNK, n - start))

    cache = TieredVectorCache(
        capacity=n,
        embed_dim=EMBED_DIM,
        tiering=TieredCacheConfig(
            hot_capacity=max(1, n // 8),
            promote_hits=1,
            shortlist=32,
            cold_dir=cold_dir,
        ),
        ann=IVFParams(
            nlist=sizing["nlist"],
            nprobe=sizing["nprobe"],
            seed="bench-tiering",
        ),
    )
    cache.bulk_load(chunks, now=0.0)
    return cache


def _queries(cache: TieredVectorCache, n_queries: int, seed: str):
    """Near-duplicate queries of cached rows, plus their base slots.

    At bulk load slot == cold row == insertion order, so picking base
    rows through the cold store is a few-page memmap gather, not a
    corpus materialization.
    """
    n = len(cache)
    rng = rng_for("bench-tiering", seed, n_queries)
    picks = np.sort(rng.choice(n, size=n_queries, replace=False))
    base = cache.cold_store.read_rows(picks)
    queries = base + 0.1 * rng.standard_normal((n_queries, EMBED_DIM))
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return queries


def _exact_best_slots(cache: TieredVectorCache, queries: np.ndarray):
    """Ground-truth argmax slot per query by streaming the cold file."""
    best_sim = np.full(queries.shape[0], -np.inf)
    best_slot = np.full(queries.shape[0], -1, dtype=np.int64)
    for start, rows in cache.cold_store.chunks():
        sims = rows @ queries.T  # (chunk, n_queries)
        arg = np.argmax(sims, axis=0)
        top = sims[arg, np.arange(queries.shape[0])]
        better = top > best_sim
        best_sim[better] = top[better]
        best_slot[better] = start + arg[better]
    return best_slot, best_sim


def _replay_phase(cache: TieredVectorCache, queries: np.ndarray):
    """The recorded query/hit phase: retrieve each query, count a hit
    when similarity clears the threshold.  Returns the bit-exact digest
    a restored replica must reproduce."""
    digest = []
    hits = 0
    for i in range(queries.shape[0]):
        entry, sim = cache.retrieve(queries[i])
        hit = sim >= HIT_THRESHOLD
        if hit:
            cache.record_hit(entry, now=float(i))
            hits += 1
        digest.append((entry.slot if entry else -1, sim, hit))
    return digest, hits / queries.shape[0]


def test_cache_tiering(benchmark):
    scale = bench_scale()
    sizing = SIZING[scale]
    n = sizing["n"]

    def experiment():
        with tempfile.TemporaryDirectory() as cold_dir:
            t0 = time.perf_counter()
            cache = _build_cache(n, sizing, cold_dir)
            build_s = time.perf_counter() - t0

            queries = _queries(cache, N_QUERIES, seed="recall")
            truth_slots, truth_sims = _exact_best_slots(cache, queries)
            t0 = time.perf_counter()
            got = [cache.retrieve(q) for q in queries]
            query_s = (time.perf_counter() - t0) / N_QUERIES
            got_slots = np.array(
                [e.slot if e else -1 for e, _ in got]
            )
            got_sims = np.array([s for _, s in got])
            recall = float(np.mean(got_slots == truth_slots))
            # Where the slot matches, the returned similarity is the
            # exact f64 dot (sim error bounds the fp16 scan's effect).
            matched = got_slots == truth_slots
            sim_err = float(
                np.max(np.abs(got_sims[matched] - truth_sims[matched]))
                if matched.any()
                else np.inf
            )

            # Warm-restart reproduction: churn a hit phase to promote
            # entries, snapshot, record a second phase, then replay it
            # on a fresh object restored from snapshot + cold file.
            _replay_phase(cache, _queries(cache, N_REPLAY, seed="warm"))
            state = cache.snapshot()
            replay_q = _queries(cache, N_REPLAY, seed="replay")
            digest_before, hit_rate_before = _replay_phase(
                cache, replay_q
            )
            hot_before = cache.hot_count
            cache.cold_store.close()
            del cache
            gc.collect()

            reborn = TieredVectorCache(
                capacity=n,
                embed_dim=EMBED_DIM,
                tiering=TieredCacheConfig(
                    hot_capacity=max(1, n // 8),
                    promote_hits=1,
                    shortlist=32,
                    cold_dir=cold_dir,
                ),
                ann=IVFParams(
                    nlist=sizing["nlist"],
                    nprobe=sizing["nprobe"],
                    seed="bench-tiering",
                ),
            )
            t0 = time.perf_counter()
            reborn.restore(state)
            restore_s = time.perf_counter() - t0
            digest_after, hit_rate_after = _replay_phase(
                reborn, replay_q
            )
            warm_identical = digest_after == digest_before
            hot_after = reborn.hot_count
            reborn.cold_store.close()

        resident_gib = resource.getrusage(
            resource.RUSAGE_SELF
        ).ru_maxrss / (1024.0**2)
        return {
            "scale": scale,
            "n_entries": n,
            "embed_dim": EMBED_DIM,
            "nlist": sizing["nlist"],
            "nprobe": sizing["nprobe"],
            "shortlist": 32,
            "hot_capacity": max(1, n // 8),
            "metrics": {
                "recall_at_1": recall,
                "max_sim_err_on_match": sim_err,
                "resident_gib": resident_gib,
                "build_s": build_s,
                "restore_s": restore_s,
                "query_ms": query_s * 1e3,
                "hit_rate_before": hit_rate_before,
                "hit_rate_after": hit_rate_after,
                "hot_count_before": hot_before,
                "hot_count_after": hot_after,
            },
            "acceptance": {
                "recall_ok": recall >= 0.95,
                "warm_restart_identical": warm_identical,
                "hit_rate_reproduced": hit_rate_after
                == hit_rate_before,
                "memory_ok": resident_gib <= RESIDENT_BUDGET_GIB
                or scale == "smoke",
            },
        }

    payload = benchmark.pedantic(experiment, rounds=1, iterations=1)
    _output.write_json(
        "cache_tiering", payload, also_root="BENCH_cache_tiering.json"
    )
    print()
    print(
        f"[cache-tiering] scale={scale} n={n} "
        f"recall@1={payload['metrics']['recall_at_1']:.4f} "
        f"resident={payload['metrics']['resident_gib']:.2f}GiB "
        f"hit_rate {payload['metrics']['hit_rate_before']:.3f} -> "
        f"{payload['metrics']['hit_rate_after']:.3f}"
    )

    metrics = payload["metrics"]
    # Acceptance: recall@1 >= 0.95 vs the exact streamed ground truth,
    # exact similarities on matches, and a bit-for-bit warm restart.
    assert metrics["recall_at_1"] >= 0.95
    assert metrics["max_sim_err_on_match"] <= 1e-9
    assert payload["acceptance"]["warm_restart_identical"]
    assert metrics["hit_rate_after"] == metrics["hit_rate_before"]
    assert metrics["hot_count_after"] == metrics["hot_count_before"]
    # The 8 GiB resident budget is the 10M-scale claim; the smoke corpus
    # trivially fits, so gate it at default/paper scale only.
    if scale != "smoke":
        assert metrics["resident_gib"] <= RESIDENT_BUDGET_GIB
