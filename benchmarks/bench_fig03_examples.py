"""Fig. 3 — qualitative retrieval mismatches."""

from conftest import run_experiment
from repro.experiments.figures import fig3_retrieval_examples


def test_fig3_retrieval_examples(benchmark, ctx):
    result = run_experiment(benchmark, fig3_retrieval_examples, ctx)
    assert result.rows, "expected mismatch examples"
    for row in result.rows:
        assert row["t2i_clip"] >= row["t2t_clip"]
