"""In-engine SLO admission & degradation under overload.

Extends Figs. 12-13: instead of measuring violations after the fact from
latency logs, every system runs the same in-engine ``SLOPolicy``
(deadlines at 2x the large model's solo latency, EDF dispatch, admission
control).  At 4x overload, MoDM's degrade cascade must beat the baselines
on violations while shedding strictly fewer requests — the baselines can
only shed doomed work, MoDM re-routes it to the small-model path.
"""

from conftest import run_experiment
from repro.experiments.figures import slo_admission


def test_slo_admission(benchmark, ctx):
    result = run_experiment(benchmark, slo_admission, ctx)
    at_4x = {
        r["system"]: r for r in result.rows if r["overload"] == 4.0
    }
    vanilla, nirvana, modm = (
        at_4x["vanilla"],
        at_4x["nirvana"],
        at_4x["modm"],
    )
    # MoDM violates less than either baseline at 4x overload...
    assert modm["violation_rate"] < vanilla["violation_rate"]
    assert modm["violation_rate"] < nirvana["violation_rate"]
    # ...while shedding strictly fewer requests.
    assert modm["shed"] < vanilla["shed"]
    assert modm["shed"] < nirvana["shed"]
    # The cascade actually engages: some requests ride the degraded path.
    assert modm["degraded"] > 0
    # Overloaded baselines shed a large share of traffic.
    assert vanilla["shed_rate"] > 0.25
