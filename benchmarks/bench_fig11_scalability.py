"""Fig. 11 — throughput scaling with GPU count (super-linear)."""

from conftest import run_experiment
from repro.experiments.figures import fig11_scalability


def test_fig11_scalability(benchmark, ctx):
    result = run_experiment(benchmark, fig11_scalability, ctx)
    first, last = result.rows[0], result.rows[-1]
    # Monotone scaling, and at least linear at the top end (the paper
    # reports super-linear thanks to faster cache fill).
    norms = [r["normalized"] for r in result.rows]
    assert all(b >= a - 0.05 for a, b in zip(norms, norms[1:]))
    assert last["normalized"] >= 0.9 * last["linear_reference"]
