"""Ablations: monitor operating mode and PID stabilization (§5.3).

* Quality- vs throughput-optimized allocation on a moderate load: quality
  mode keeps more large-model workers (better quality) while throughput
  mode minimizes GPU time per request.
* PID on vs off: without damping the allocation jumps with every noisy
  window estimate.
"""

import numpy as np

from repro.core.config import MonitorMode
from repro.experiments.harness import CLUSTER_MI210
from repro.experiments.reporting import ExperimentResult

import os


def _save(result: ExperimentResult) -> None:
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{result.experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(result.render() + "\n")
from repro.cluster.arrivals import poisson_arrivals


def _run(ctx, mode, use_pid, trace, warm):
    system = ctx.modm(
        CLUSTER_MI210,
        smalls=("sdxl",),
        mode=mode,
        use_pid=use_pid,
    )
    system.warm_cache(warm)
    report = system.run(trace)
    large_share = np.mean([a.n_large for a in report.allocations])
    switches = sum(w.switches for w in report.workers)
    refined_by_large = sum(
        1
        for r in report.completed()
        if r.is_hit and r.model_name == "sd3.5-large"
    )
    return report, large_share, switches, refined_by_large


def test_ablation_monitor_mode_and_pid(benchmark, ctx):
    trace_full = ctx.diffusiondb()
    warm, serve = ctx.split(trace_full)
    serve = serve.slice(0, max(100, len(serve) // 2))
    arrivals = poisson_arrivals(8.0, len(serve), seed="ablation-monitor")
    timed = serve.with_arrivals(arrivals)

    def experiment():
        result = ExperimentResult(
            experiment_id="ablation-monitor",
            title="Monitor mode and PID stabilization",
            paper_reference="§5.3: two modes; PID damps reallocation",
        )
        for mode in (MonitorMode.QUALITY, MonitorMode.THROUGHPUT):
            report, large_share, switches, refined_large = _run(
                ctx, mode, True, timed, warm
            )
            result.add_row(
                config=f"{mode.value}+pid",
                mean_n_large=large_share,
                model_switches=switches,
                hits_refined_by_large=refined_large,
                p99_s=float(np.percentile(report.latencies(), 99)),
            )
        report, large_share, switches, refined_large = _run(
            ctx, MonitorMode.THROUGHPUT, False, timed, warm
        )
        result.add_row(
            config="throughput+no-pid",
            mean_n_large=large_share,
            model_switches=switches,
            hits_refined_by_large=refined_large,
            p99_s=float(np.percentile(report.latencies(), 99)),
        )
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(result.render())
    _save(result)
    rows = {r["config"]: r for r in result.rows}
    # Quality mode holds more large-model workers at moderate load.
    assert (
        rows["quality+pid"]["mean_n_large"]
        >= rows["throughput+pid"]["mean_n_large"]
    )
    # Disabling the PID never reduces model switching.
    assert (
        rows["throughput+no-pid"]["model_switches"]
        >= rows["throughput+pid"]["model_switches"]
    )
