"""Fig. 9 — hit rates and k mix vs cache size (DiffusionDB)."""

from conftest import run_experiment
from repro.experiments.figures import fig9_cache_hit_rates


def test_fig9_cache_hit_rates(benchmark, ctx):
    result = run_experiment(benchmark, fig9_cache_hit_rates, ctx)
    largest = max(r["cache_size"] for r in result.rows)
    at_largest = {
        r["system"]: r["hit_rate"]
        for r in result.rows
        if r["cache_size"] == largest
    }
    # MoDM beats Nirvana; cache-all beats cache-large (paper's insights).
    assert at_largest["modm-cache-all"] >= at_largest["modm-cache-large"]
    assert at_largest["modm-cache-all"] > at_largest["nirvana"]
    assert at_largest["modm-cache-all"] > 0.75
