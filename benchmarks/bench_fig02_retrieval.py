"""Fig. 2 — retrieval-quality distributions by similarity policy."""

from conftest import run_experiment
from repro.experiments.figures import fig2_retrieval_distributions


def test_fig2_retrieval_distributions(benchmark, ctx):
    result = run_experiment(benchmark, fig2_retrieval_distributions, ctx)
    by_policy = {row["policy"]: row for row in result.rows}
    t2i = by_policy["text-to-image"]
    t2t = by_policy["text-to-text"]
    # The paper's insight: text-to-image retrieval aligns better visually.
    assert t2i["mean_clip"] > t2t["mean_clip"]
    assert t2i["mean_pick"] > t2t["mean_pick"]
